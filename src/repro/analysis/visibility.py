"""Static visibility audit: who can see what, before any packet flies.

§II-B requires visibility scoping to be *congruent* with access control.
This module computes, from the backend database alone, the full
subject × object visibility relation, and audits it for the mistakes an
enterprise admin actually makes:

* **over-exposure** — objects visible to more than a threshold fraction
  of subjects (a "safe" that everyone can see);
* **orphaned objects** — Level 2/3 objects no registered subject can
  see (dead policies);
* **orphaned policies** — policies matching no subjects or no objects;
* **unreachable covert services** — secret groups with object members
  but no subject members (or vice versa).

The computation is vectorized with numpy over the predicate match
matrices, since enterprise databases are 10^4 × 10^3-scale (§II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.database import BackendDatabase
from repro.backend.groups import GroupManager


@dataclass
class VisibilityMatrix:
    """Dense boolean subject × object visibility relation."""

    subject_ids: list[str]
    object_ids: list[str]
    visible: np.ndarray  # bool, shape (n_subjects, n_objects)

    def can_see(self, subject_id: str, object_id: str) -> bool:
        i = self.subject_ids.index(subject_id)
        j = self.object_ids.index(object_id)
        return bool(self.visible[i, j])

    def objects_visible_to(self, subject_id: str) -> list[str]:
        i = self.subject_ids.index(subject_id)
        return [oid for j, oid in enumerate(self.object_ids) if self.visible[i, j]]

    def audience_of(self, object_id: str) -> list[str]:
        j = self.object_ids.index(object_id)
        return [sid for i, sid in enumerate(self.subject_ids) if self.visible[i, j]]

    @property
    def exposure(self) -> np.ndarray:
        """Per-object fraction of subjects that can see it."""
        if not self.subject_ids:
            return np.zeros(len(self.object_ids))
        return self.visible.mean(axis=0)

    @property
    def mean_n(self) -> float:
        """Average N (objects per subject) — the §II-C quantity."""
        if not self.subject_ids:
            return 0.0
        return float(self.visible.sum(axis=1).mean())


def compute_matrix(db: BackendDatabase) -> VisibilityMatrix:
    """Evaluate every policy's predicates over every subject/object.

    A Level 1 object is visible to everyone; a Level 2/3 object is
    visible to a subject iff some policy matches both.
    """
    subject_ids = sorted(db.subjects)
    object_ids = sorted(db.objects)
    n_s, n_o = len(subject_ids), len(object_ids)
    visible = np.zeros((n_s, n_o), dtype=bool)

    levels = np.array([db.objects[oid].level for oid in object_ids])
    visible[:, levels == 1] = True

    subject_attrs = [db.subjects[sid].attributes for sid in subject_ids]
    object_attrs = [db.objects[oid].attributes for oid in object_ids]
    for policy in db.policies.values():
        s_mask = np.fromiter(
            (policy.subject_pred.evaluate(a) for a in subject_attrs),
            dtype=bool, count=n_s,
        )
        o_mask = np.fromiter(
            (policy.object_pred.evaluate(a) for a in object_attrs),
            dtype=bool, count=n_o,
        )
        o_mask &= levels != 1  # Level 1 is already universally visible
        visible |= np.outer(s_mask, o_mask)
    return VisibilityMatrix(subject_ids, object_ids, visible)


@dataclass
class AuditReport:
    over_exposed: list[tuple[str, float]] = field(default_factory=list)
    orphaned_objects: list[str] = field(default_factory=list)
    orphaned_policies: list[str] = field(default_factory=list)
    half_empty_groups: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.over_exposed or self.orphaned_objects
            or self.orphaned_policies or self.half_empty_groups
        )

    def render(self) -> str:
        lines = ["visibility audit", "================"]
        if self.clean:
            lines.append("no findings — scoping is congruent and live.")
            return "\n".join(lines)
        for object_id, fraction in self.over_exposed:
            lines.append(f"OVER-EXPOSED   {object_id}: visible to {fraction:.0%} of subjects")
        for object_id in self.orphaned_objects:
            lines.append(f"ORPHANED OBJ   {object_id}: no subject can discover it")
        for policy_id in self.orphaned_policies:
            lines.append(f"ORPHANED POL   {policy_id}: matches no subjects or no objects")
        for group_id in self.half_empty_groups:
            lines.append(f"HALF GROUP     {group_id}: members on only one side")
        return "\n".join(lines)


def audit(
    db: BackendDatabase,
    groups: GroupManager | None = None,
    exposure_threshold: float = 0.9,
) -> AuditReport:
    """Run every check; thresholds tuned for Level 2/3 objects."""
    matrix = compute_matrix(db)
    report = AuditReport()

    levels = {oid: db.objects[oid].level for oid in matrix.object_ids}
    exposure = matrix.exposure
    for j, object_id in enumerate(matrix.object_ids):
        if levels[object_id] == 1:
            continue
        if exposure[j] >= exposure_threshold:
            report.over_exposed.append((object_id, float(exposure[j])))
        if exposure[j] == 0.0:
            report.orphaned_objects.append(object_id)

    for policy in db.policies.values():
        if not db.subjects_matching(policy.subject_pred) or not db.objects_matching(
            policy.object_pred
        ):
            report.orphaned_policies.append(policy.policy_id)

    if groups is not None:
        for group in groups.groups.values():
            if bool(group.subject_members) != bool(group.object_members):
                report.half_empty_groups.append(group.group_id)
    return report
