"""Analysis: closed-form scalability (Table I), message-overhead
accounting (§IX-A), and the analytic discovery-time model."""

from repro.analysis.scalability import ScaleParams, speedups, table1
from repro.analysis.overhead import exchange_totals, paper_accounting
from repro.analysis.timing_model import (
    TimeBreakdown,
    headline_computation_ms,
    predict_single_object,
)
from repro.analysis.visibility import AuditReport, VisibilityMatrix, audit, compute_matrix

__all__ = [
    "AuditReport",
    "ScaleParams",
    "TimeBreakdown",
    "VisibilityMatrix",
    "audit",
    "compute_matrix",
    "exchange_totals",
    "headline_computation_ms",
    "paper_accounting",
    "predict_single_object",
    "speedups",
    "table1",
]
