"""Message-overhead accounting — §IX-A reproduced and cross-checked.

``paper_accounting()`` returns the §IX-A table verbatim (derived from
the field sizes, not hard-coded totals) and the protocol tests assert it
equals :mod:`repro.protocol.messages`' nominal sizes. ``actual_sizes``
measures our real encodings for the EXPERIMENTS.md comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocol import messages


@dataclass(frozen=True)
class MessageBudget:
    """Nominal and (optionally) measured size of one message."""

    name: str
    nominal: int
    composition: str


def paper_accounting() -> list[MessageBudget]:
    """§IX-A, derived from field sizes (128-bit strength)."""
    n = messages.NOMINAL
    return [
        MessageBudget("QUE1", n["nonce"], "R_S (28)"),
        MessageBudget("RES1 (Level 1)", n["prof"], "PROF_O (200, admin-signed)"),
        MessageBudget(
            "RES1 (Level 2/3)",
            n["nonce"] + n["cert"] + n["kexm"] + n["sig"],
            "R_O (28) + CERT (616) + KEXM (64) + SIG (64)",
        ),
        MessageBudget(
            "QUE2 (v3.0)",
            n["prof"] + n["cert"] + n["kexm"] + n["sig"] + 2 * n["mac"],
            "PROF_S (200) + CERT (616) + KEXM (64) + SIG (64) + 2 MAC (64)",
        ),
        MessageBudget(
            "RES2", n["enc_prof"] + n["mac"], "[PROF_O]ENC (248) + MAC_O (32)"
        ),
    ]


def exchange_totals() -> dict[str, int]:
    """Per-level exchange totals; the paper's 228 B and 2088 B."""
    return {
        "level1": messages.level1_exchange_nominal(),
        "level23": messages.level23_exchange_nominal(),
    }


def actual_sizes(que1, res1, que2, res2) -> dict[str, int]:
    """Real serialized sizes of one captured exchange."""
    return {
        "QUE1": len(que1.to_bytes()),
        "RES1": len(res1.to_bytes()),
        "QUE2": len(que2.to_bytes()),
        "RES2": len(res2.to_bytes()),
    }


def overhead_vs_v1(with_level3: bool = True) -> dict[str, int]:
    """The §VI 'Overhead of Extensions' deltas: v2/v3 add one 32-B MAC."""
    base_que2 = messages.Que2.nominal_size(with_mac3=False)
    full_que2 = messages.Que2.nominal_size(with_mac3=True)
    return {
        "que2_v1": base_que2,
        "que2_v3": full_que2,
        "delta": full_que2 - base_que2,
    }
