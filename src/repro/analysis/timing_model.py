"""Closed-form discovery-time predictions (sanity-check for the simulator).

Fig. 6(f) decomposes a discovery into computation + transmission; this
module predicts both from the cost tables and link model, giving an
analytic cross-check the simulator tests compare against (they must
agree within pipeline effects).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3, DeviceProfile
from repro.net.radio import DEFAULT_WIFI, LinkModel
from repro.protocol import messages


@dataclass(frozen=True)
class TimeBreakdown:
    """Seconds of computation vs transmission for one discovery."""

    computation_s: float
    transmission_s: float

    @property
    def total_s(self) -> float:
        return self.computation_s + self.transmission_s

    @property
    def transmission_fraction(self) -> float:
        return self.transmission_s / self.total_s if self.total_s else 0.0


def level1_computation_ms(
    subject: DeviceProfile = NEXUS6, strength: int = 128
) -> float:
    """Level 1: the subject verifies one PROF signature (5.1 ms)."""
    return subject.op_cost_ms("ecdsa_verify", strength)


def level23_computation_ms(
    profile: DeviceProfile, strength: int = 128
) -> float:
    """Level 2/3 per side: 1 sign + 3 verifies + 2 ECDH (§IX-B)."""
    return (
        profile.op_cost_ms("ecdsa_sign", strength)
        + 3 * profile.op_cost_ms("ecdsa_verify", strength)
        + profile.op_cost_ms("ecdh_gen", strength)
        + profile.op_cost_ms("ecdh_derive", strength)
    )


def _message_time(size: int, hops: int, link: LinkModel) -> float:
    return hops * (link.access_delay_s + link.occupancy(size))


def predict_single_object(
    level: int,
    hops: int = 1,
    link: LinkModel = DEFAULT_WIFI,
    subject: DeviceProfile = NEXUS6,
    obj: DeviceProfile = RASPBERRY_PI3,
    strength: int = 128,
) -> TimeBreakdown:
    """Predicted discovery time of one object at a given hop distance.

    This is the Fig. 6(h) model: computation is hop-independent,
    transmission grows linearly with hops.
    """
    if level == 1:
        comp = (level1_computation_ms(subject, strength) + subject.per_message_ms
                + obj.per_message_ms) / 1000.0
        txn = _message_time(messages.Que1.nominal_size(), hops, link) + _message_time(
            messages.Res1Level1.nominal_size(), hops, link
        )
        return TimeBreakdown(comp, txn)
    if level in (2, 3):
        comp = (
            level23_computation_ms(subject, strength)
            + level23_computation_ms(obj, strength)
            + 2 * subject.per_message_ms
            + 2 * obj.per_message_ms
        ) / 1000.0
        txn = (
            _message_time(messages.Que1.nominal_size(), hops, link)
            + _message_time(messages.Res1.nominal_size(), hops, link)
            + _message_time(messages.Que2.nominal_size(), hops, link)
            + _message_time(messages.Res2.nominal_size(), hops, link)
        )
        return TimeBreakdown(comp, txn)
    raise ValueError(f"level must be 1, 2 or 3, got {level}")


def headline_computation_ms(strength: int = 128) -> float:
    """The §IX claim: 'Argus needs only 105 ms' (subject + object)."""
    return level23_computation_ms(NEXUS6, strength) + level23_computation_ms(
        RASPBERRY_PI3, strength
    )
