"""Static visibility audit tests — and its agreement with the protocol."""

import pytest

from repro.analysis.visibility import audit, compute_matrix
from repro.attributes.model import AttributeSet
from repro.attributes.predicate import parse_predicate
from repro.backend.database import (
    BackendDatabase,
    ObjectRecord,
    Policy,
    SubjectRecord,
)
from repro.backend.groups import GroupManager


@pytest.fixture
def db():
    db = BackendDatabase()
    for i, position in enumerate(["manager", "staff", "staff", "visitor"]):
        db.add_subject(SubjectRecord(f"u{i}", AttributeSet(position=position)))
    db.add_object(ObjectRecord("thermo", AttributeSet(type="thermometer"), level=1))
    db.add_object(ObjectRecord("lock", AttributeSet(type="door lock"), level=2))
    db.add_object(ObjectRecord("media", AttributeSet(type="multimedia"), level=2))
    db.add_policy(Policy(
        "managers-locks",
        parse_predicate("position=='manager'"),
        parse_predicate("type=='door lock'"),
    ))
    db.add_policy(Policy(
        "everyone-media",
        parse_predicate("position=='manager' || position=='staff' || position=='visitor'"),
        parse_predicate("type=='multimedia'"),
    ))
    return db


class TestMatrix:
    def test_level1_visible_to_all(self, db):
        matrix = compute_matrix(db)
        assert matrix.audience_of("thermo") == ["u0", "u1", "u2", "u3"]

    def test_policy_scoping(self, db):
        matrix = compute_matrix(db)
        assert matrix.audience_of("lock") == ["u0"]  # the manager
        assert matrix.can_see("u0", "lock")
        assert not matrix.can_see("u1", "lock")

    def test_objects_visible_to(self, db):
        matrix = compute_matrix(db)
        assert set(matrix.objects_visible_to("u1")) == {"thermo", "media"}

    def test_mean_n(self, db):
        matrix = compute_matrix(db)
        # u0: 3, u1/u2/u3: 2 each
        assert matrix.mean_n == pytest.approx((3 + 2 + 2 + 2) / 4)

    def test_matches_live_protocol(self, db):
        """The static matrix must agree with what the real protocol serves."""
        from repro.backend import Backend
        from repro.protocol import discover

        backend = Backend()
        for record in db.subjects.values():
            backend.register_subject(record.subject_id, record.attributes)
        backend.register_object("thermo", {"type": "thermometer"}, level=1,
                                functions=("read",))
        backend.register_object(
            "lock", {"type": "door lock"}, level=2, functions=("open",),
            variants=[("position=='manager'", ("open",))],
        )
        backend.register_object(
            "media", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("position=='manager' || position=='staff' || position=='visitor'",
                       ("play",))],
        )
        for policy in db.policies.values():
            backend.database.add_policy(policy)
        matrix = compute_matrix(db)
        objects = list(backend.issued_objects.values())
        for subject_id in matrix.subject_ids:
            creds = backend.issued_subjects[subject_id]
            wire = discover(creds, objects).service_ids()
            static = set(matrix.objects_visible_to(subject_id))
            assert wire == static


class TestAudit:
    def test_clean_database(self, db):
        report = audit(db, exposure_threshold=1.1)  # disable exposure check
        assert report.orphaned_objects == []
        assert report.orphaned_policies == []
        assert "no findings" in report.render()

    def test_over_exposed_flagged(self, db):
        report = audit(db, exposure_threshold=0.9)
        assert [oid for oid, _ in report.over_exposed] == ["media"]

    def test_orphaned_object_flagged(self, db):
        db.add_object(ObjectRecord("safe", AttributeSet(type="safe"), level=2))
        report = audit(db)
        assert "safe" in report.orphaned_objects
        assert "ORPHANED OBJ" in report.render()

    def test_orphaned_policy_flagged(self, db):
        db.add_policy(Policy(
            "ghost", parse_predicate("position=='cfo'"), parse_predicate("true"),
        ))
        report = audit(db)
        assert "ghost" in report.orphaned_policies

    def test_half_empty_group_flagged(self, db):
        groups = GroupManager()
        group = groups.create_group("sensitive:a", "sensitive:sa")
        groups.enroll_subject(group.group_id, "u0")  # no object side
        report = audit(db, groups)
        assert group.group_id in report.half_empty_groups

    def test_balanced_group_clean(self, db):
        groups = GroupManager()
        group = groups.create_group("sensitive:a", "sensitive:sa")
        groups.enroll_subject(group.group_id, "u0")
        groups.enroll_object(group.group_id, "lock")
        report = audit(db, groups)
        assert report.half_empty_groups == []

    def test_empty_database(self):
        report = audit(BackendDatabase())
        assert report.clean
