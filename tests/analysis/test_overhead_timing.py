"""Message-overhead accounting and the analytic timing model."""

import pytest

from repro.analysis import overhead, timing_model
from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3
from repro.experiments.msg_overhead import capture_exchange


class TestOverheadAccounting:
    def test_paper_budget_rows(self):
        budgets = {b.name: b.nominal for b in overhead.paper_accounting()}
        assert budgets["QUE1"] == 28
        assert budgets["RES1 (Level 1)"] == 200
        assert budgets["RES1 (Level 2/3)"] == 772
        assert budgets["QUE2 (v3.0)"] == 1008
        assert budgets["RES2"] == 280

    def test_exchange_totals(self):
        totals = overhead.exchange_totals()
        assert totals["level1"] == 228
        assert totals["level23"] == 2088

    def test_v3_delta_is_one_mac(self):
        deltas = overhead.overhead_vs_v1()
        assert deltas["delta"] == 32

    def test_actual_capture_has_all_messages(self):
        que1, res1, que2, res2 = capture_exchange()
        sizes = overhead.actual_sizes(que1, res1, que2, res2)
        assert set(sizes) == {"QUE1", "RES1", "QUE2", "RES2"}
        assert all(v > 0 for v in sizes.values())

    def test_actual_que1_near_nominal(self):
        que1, *_ = capture_exchange()
        # 1 type byte + 28-byte nonce
        assert len(que1.to_bytes()) == 29


class TestTimingModel:
    def test_level1_computation(self):
        assert timing_model.level1_computation_ms() == pytest.approx(5.1)

    def test_level23_computation_anchors(self):
        assert timing_model.level23_computation_ms(NEXUS6) == pytest.approx(27.4, abs=0.01)
        assert timing_model.level23_computation_ms(RASPBERRY_PI3) == pytest.approx(78.2, abs=0.1)

    def test_headline_105ms(self):
        """§IX: 'Argus needs only 105 ms'."""
        assert timing_model.headline_computation_ms() == pytest.approx(105.6, abs=1.0)

    def test_prediction_levels_ordered(self):
        l1 = timing_model.predict_single_object(1)
        l2 = timing_model.predict_single_object(2)
        assert l1.total_s < l2.total_s

    def test_prediction_hops_linear_in_transmission(self):
        one = timing_model.predict_single_object(2, hops=1)
        four = timing_model.predict_single_object(2, hops=4)
        assert four.computation_s == one.computation_s
        assert four.transmission_s == pytest.approx(4 * one.transmission_s)

    def test_level1_mostly_transmission(self):
        """Fig. 6(f): Level 1 is ~89% transmission."""
        l1 = timing_model.predict_single_object(1)
        assert l1.transmission_fraction > 0.75

    def test_level2_balanced(self):
        """Fig. 6(f): Level 2/3 is ~45% transmission (we land 45-65%)."""
        l2 = timing_model.predict_single_object(2)
        assert 0.35 < l2.transmission_fraction < 0.7

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            timing_model.predict_single_object(4)
