"""Table I closed-form model and its agreement with the live systems."""

import numpy as np
import pytest

from repro.analysis import scalability
from repro.analysis.scalability import ScaleParams
from repro.experiments import table1


class TestClosedForm:
    def test_table1_shape(self):
        rows = scalability.table1(ScaleParams(n=100, alpha=50))
        assert set(rows) == {"ID-based ACL", "ABE", "Argus"}

    def test_id_acl_row(self):
        p = ScaleParams(n=300, alpha=10)
        assert scalability.id_acl_add(p) == 300
        assert scalability.id_acl_remove(p) == 300

    def test_abe_row(self):
        p = ScaleParams(n=100, alpha=500, xi_o=1.5, xi_s=2.0)
        assert scalability.abe_add(p) == 1
        assert scalability.abe_remove(p) == 1.5 * 100 + 2.0 * 499

    def test_argus_row(self):
        p = ScaleParams(n=100, alpha=500)
        assert scalability.argus_add(p) == 1
        assert scalability.argus_remove(p) == 100

    def test_paper_approx_10n(self):
        """§VIII: 'the overhead easily goes to 10N or more' for large alpha."""
        p = ScaleParams(n=1000, alpha=9001)
        assert scalability.abe_remove(p) == pytest.approx(10 * p.n)

    def test_speedup_headlines(self):
        p = ScaleParams(n=1000, alpha=9001)
        ratios = scalability.speedups(p)
        assert ratios["add_vs_id_acl"] == 1000
        assert ratios["remove_vs_abe"] == pytest.approx(10.0)

    def test_level3_remove_is_gamma_minus_1(self):
        assert scalability.level3_remove(7) == 6
        with pytest.raises(ValueError):
            scalability.level3_remove(0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ScaleParams(n=-1, alpha=1)
        with pytest.raises(ValueError):
            ScaleParams(n=1, alpha=1, xi_o=0.5)


class TestSweeps:
    def test_add_sweep(self):
        n = np.array([10, 100, 1000])
        sweep = scalability.sweep_add_overhead(n)
        assert np.array_equal(sweep["ID-based ACL"], n)
        assert np.all(sweep["Argus"] == 1)
        assert np.all(sweep["ABE"] == 1)

    def test_remove_sweep_ordering(self):
        """For alpha > 0, ABE remove dominates Argus at every N."""
        n = np.logspace(1, 3, 10)
        sweep = scalability.sweep_remove_overhead(n, alpha=100, xi_o=1.2, xi_s=1.2)
        assert np.all(sweep["ABE"] > sweep["Argus"])
        assert np.array_equal(sweep["Argus"], sweep["ID-based ACL"])


class TestClosedFormMatchesSimulation:
    def test_simulated_overheads_match_formulas(self):
        sim = table1.simulate(n_objects=30, alpha=8)
        # ID-ACL: N for both
        assert sim.id_acl_add == 30
        assert sim.id_acl_remove == 30
        # Argus: 1 to add (the newcomer only), N to remove
        assert sim.argus_add == 1
        assert sim.argus_remove == 30
        # ABE: re-encryptions = N (all same-policy objects) and re-keys =
        # everyone else holding the attributes: the alpha - 1 original
        # category members plus the newcomer added mid-simulation
        assert sim.abe_remove == 30 + (8 - 1) + 1

    def test_render_paths(self):
        assert "Argus" in table1.closed_form().render()
        assert "Argus" in table1.simulated_table(10, 4).render()
