"""The post-discovery command channel: rights enforcement + channel security."""

import pytest

from repro.access import (
    STATUS_DENIED,
    STATUS_OK,
    AccessError,
    Command,
    CommandClient,
    CommandHandler,
    Response,
    invoke,
)
from repro.access.messages import command_mac, response_mac
from repro.attacks.channel import run_exchange
from repro.protocol.errors import (
    AuthenticationError,
    FreshnessError,
    MessageFormatError,
    SessionError,
)
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


@pytest.fixture
def linked(staff, media):
    """A completed discovery: client + handler over the shared session."""
    subject = SubjectEngine(staff)
    obj = ObjectEngine(media)
    capture = run_exchange(subject, obj)
    assert capture.outcome is not None
    client = CommandClient(subject)
    handler = CommandHandler(obj)
    handler.register("play", lambda args: b"playing " + args)
    handler.register("admin", lambda args: b"admin ok")
    return subject, obj, client, handler


class TestSessionEstablishment:
    def test_both_sides_recorded_session(self, linked):
        subject, obj, *_ = linked
        assert "media-1" in subject.established
        assert "staff-alice" in obj.established
        assert subject.established["media-1"].key == obj.established["staff-alice"].key

    def test_functions_match_served_variant(self, linked):
        subject, obj, *_ = linked
        # staff variant grants ("play",)
        assert subject.established["media-1"].functions == ("play",)
        assert obj.established["staff-alice"].functions == ("play",)

    def test_level3_session_records_group(self, fellow, kiosk):
        subject = SubjectEngine(fellow)
        obj = ObjectEngine(kiosk)
        run_exchange(subject, obj)
        session = obj.established[fellow.subject_id]
        assert session.level == 3
        assert session.group_id is not None


class TestInvocation:
    def test_granted_function_executes(self, linked):
        _, _, client, handler = linked
        result = invoke(client, handler, "media-1", "play", b"jazz")
        assert result == b"playing jazz"

    def test_roundtrip_serialization(self, linked):
        _, _, client, handler = linked
        command = client.build_command("media-1", "play", b"x")
        restored = Command.from_bytes(command.to_bytes())
        assert restored == command
        response = handler.handle(restored, "staff-alice")
        assert Response.from_bytes(response.to_bytes()) == response

    def test_ungranted_function_denied(self, linked):
        """'admin' exists on the device but was NOT in the staff variant."""
        _, _, client, handler = linked
        with pytest.raises(AccessError, match="denied"):
            invoke(client, handler, "media-1", "admin")

    def test_unimplemented_function_errors(self, kiosk, fellow):
        subject = SubjectEngine(fellow)
        obj = ObjectEngine(kiosk)
        run_exchange(subject, obj)
        client, handler = CommandClient(subject), CommandHandler(obj)
        with pytest.raises(AccessError, match="errored"):
            invoke(client, handler, "kiosk-1", "dispense_support_flyer")

    def test_device_fault_is_isolated(self, linked):
        _, _, client, handler = linked
        handler.register("play", lambda args: 1 / 0)
        with pytest.raises(AccessError, match="device fault"):
            invoke(client, handler, "media-1", "play")

    def test_undiscovered_object_rejected_client_side(self, linked):
        _, _, client, _ = linked
        with pytest.raises(SessionError):
            client.build_command("ghost-device", "play")

    def test_args_encrypted_on_wire(self, linked):
        _, _, client, _ = linked
        command = client.build_command("media-1", "play", b"super secret args")
        assert b"super secret args" not in command.to_bytes()

    def test_can_invoke_reflects_rights(self, linked):
        _, _, client, _ = linked
        assert client.can_invoke("media-1", "play")
        assert not client.can_invoke("media-1", "admin")
        assert not client.can_invoke("ghost", "play")


class TestChannelSecurity:
    def test_replayed_command_rejected(self, linked):
        _, _, client, handler = linked
        command = client.build_command("media-1", "play", b"x")
        assert handler.handle(command, "staff-alice") is not None
        assert handler.handle(command, "staff-alice") is None
        assert any(isinstance(e, FreshnessError) for e in handler.errors)

    def test_out_of_order_old_seq_rejected(self, linked):
        _, _, client, handler = linked
        first = client.build_command("media-1", "play", b"1")
        second = client.build_command("media-1", "play", b"2")
        assert handler.handle(second, "staff-alice") is not None
        assert handler.handle(first, "staff-alice") is None

    def test_tampered_mac_rejected(self, linked):
        _, _, client, handler = linked
        command = client.build_command("media-1", "play")
        forged = Command(command.seq, command.function, command.ciphertext, b"\x00" * 32)
        assert handler.handle(forged, "staff-alice") is None
        assert any(isinstance(e, AuthenticationError) for e in handler.errors)

    def test_function_swap_rejected(self, linked):
        """Changing the function name breaks the MAC: rights cannot be
        escalated by renaming a signed command."""
        _, _, client, handler = linked
        command = client.build_command("media-1", "play")
        swapped = Command(command.seq, "admin", command.ciphertext, command.mac)
        assert handler.handle(swapped, "staff-alice") is None

    def test_unknown_subject_silence(self, linked):
        _, _, client, handler = linked
        command = client.build_command("media-1", "play")
        assert handler.handle(command, "stranger") is None

    def test_response_mac_verified(self, linked):
        _, _, client, handler = linked
        command = client.build_command("media-1", "play")
        response = handler.handle(command, "staff-alice")
        forged = Response(response.seq, response.status, response.ciphertext, b"\x00" * 32)
        with pytest.raises(AuthenticationError):
            client.parse_response("media-1", forged)

    def test_status_cannot_be_flipped(self, linked):
        """Flipping DENIED -> OK invalidates the response MAC."""
        _, _, client, handler = linked
        denied_cmd = client.build_command("media-1", "admin")
        response = handler.handle(denied_cmd, "staff-alice")
        assert response.status == STATUS_DENIED
        flipped = Response(response.seq, STATUS_OK, response.ciphertext, response.mac)
        with pytest.raises(AuthenticationError):
            client.parse_response("media-1", flipped)

    def test_cross_session_command_rejected(self, backend, media):
        """A command MAC'd under user A's session fails on user B's."""
        a = backend.register_subject("cmd-a", {"position": "staff"})
        b = backend.register_subject("cmd-b", {"position": "staff"})
        obj = ObjectEngine(media)
        sa, sb = SubjectEngine(a), SubjectEngine(b)
        run_exchange(sa, obj)
        run_exchange(sb, obj)
        handler = CommandHandler(obj)
        handler.register("play", lambda args: b"ok")
        command = CommandClient(sa).build_command("media-1", "play")
        assert handler.handle(command, "cmd-b") is None


class TestMessageFormats:
    def test_bad_seq_rejected(self):
        with pytest.raises(MessageFormatError):
            Command(0, "f", b"", b"\x00" * 32)

    def test_bad_mac_length_rejected(self):
        with pytest.raises(MessageFormatError):
            Command(1, "f", b"", b"short")

    def test_bad_status_rejected(self):
        with pytest.raises(MessageFormatError):
            Response(1, 99, b"", b"\x00" * 32)

    def test_garbage_rejected(self):
        with pytest.raises(MessageFormatError):
            Command.from_bytes(b"\x10")


class TestMessageFuzz:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=200))
    def test_command_parse_never_crashes(self, data):
        from repro.access.messages import Command
        from repro.protocol.errors import MessageFormatError

        try:
            Command.from_bytes(data)
        except MessageFormatError:
            pass

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=200))
    def test_response_parse_never_crashes(self, data):
        from repro.access.messages import Response
        from repro.protocol.errors import MessageFormatError

        try:
            Response.from_bytes(data)
        except MessageFormatError:
            pass
