"""Centralized baseline: the §X-A failure modes, measured."""

import pytest

from repro.attributes.model import AttributeSet
from repro.baselines.centralized import (
    CentralizedClient,
    DirectoryRecord,
    DirectoryServer,
    ServerDownError,
    accuracy_experiment,
)
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.profile import Profile, sign_profile


@pytest.fixture(scope="module")
def admin():
    return generate_signing_key()


def make_record(admin, object_id, location, allowed):
    prof = sign_profile(Profile(object_id, AttributeSet(room=location), ("use",)), admin)
    return DirectoryRecord(object_id, location, prof, set(allowed))


@pytest.fixture
def server(admin):
    server = DirectoryServer()
    server.register(make_record(admin, "lab-light", "lab", {"alice"}))
    server.register(make_record(admin, "lab-media", "lab", {"alice"}))
    server.register(make_record(admin, "lobby-tv", "lobby", {"alice"}))
    return server


class TestHappyPath:
    def test_query_by_location(self, server):
        client = CentralizedClient("alice", server)
        profiles, latency = client.discover("lab", ["lobby"])
        assert {p.entity_id for p in profiles} == {"lab-light", "lab-media"}
        assert latency == pytest.approx(0.16)

    def test_account_scoping(self, server):
        client = CentralizedClient("eve", server)
        profiles, _ = client.discover("lab", [])
        assert profiles == []


class TestFailureModes:
    def test_single_point_of_failure(self, server):
        """Server down => zero discovery, everywhere, for everyone."""
        server.available = False
        client = CentralizedClient("alice", server)
        with pytest.raises(ServerDownError):
            client.discover("lab", [])

    def test_argus_unaffected_by_server_failure(self, server):
        """The comparison that matters: P2P discovery has no server to
        lose. Same fleet, server 'down', Argus still discovers."""
        from repro.backend import Backend
        from repro.protocol import discover

        backend = Backend()
        user = backend.register_subject("alice", {"position": "staff"})
        lab_light = backend.register_object(
            "lab-light", {"room": "lab"}, level=1, functions=("use",))
        server.available = False  # irrelevant to Argus
        result = discover(user, [lab_light])
        assert result.service_ids() == {"lab-light"}

    def test_localization_error_degrades_accuracy(self, server):
        good = CentralizedClient("alice", server, localization_error=0.0)
        bad = CentralizedClient("alice", server, localization_error=0.5)
        expected = {"lab-light", "lab-media"}
        acc_good = accuracy_experiment(server, good, "lab", ["lobby"], expected)
        acc_bad = accuracy_experiment(server, bad, "lab", ["lobby"], expected)
        assert acc_good == 1.0
        assert acc_bad < 0.75

    def test_stale_records_serve_ghosts(self, server, admin):
        """A decommissioned device lingers unless ops clean the record —
        the central directory's truth decays; Argus's 'truth' is the
        device answering (or not) in real time."""
        server.decommission("lab-light", remove=False)
        client = CentralizedClient("alice", server)
        profiles, _ = client.discover("lab", [])
        assert "lab-light" in {p.entity_id for p in profiles}  # a ghost

    def test_wan_latency_dominates(self, server):
        """One central query costs more transmission time than Argus's
        whole single-hop Level 1 exchange."""
        from repro.analysis.timing_model import predict_single_object

        _, latency = CentralizedClient("alice", server).discover("lab", [])
        argus_l1 = predict_single_object(1)
        assert latency > argus_l1.transmission_s
