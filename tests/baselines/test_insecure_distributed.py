"""The insecure baseline: every Argus guarantee, shown absent.

Each test pairs a failure of the UPnP-class world with the Argus test
that proves the corresponding guarantee holds (referenced in comments),
making the delta concrete.
"""

import pytest

from repro.baselines.insecure_distributed import (
    PassiveSniffer,
    PlainAdvertisement,
    PlainService,
    PlainSubjectDevice,
    spoof_service,
)


@pytest.fixture
def services():
    return [
        PlainService(PlainAdvertisement(
            "safe-hr-office", {"type": "safe", "room": "HR"}, ("unlock",))),
        PlainService(PlainAdvertisement(
            "camera-lobby", {"type": "camera"}, ("stream",))),
    ]


class TestNoServiceInformationSecrecy:
    def test_everyone_sees_everything(self, services):
        """No visibility scoping at all (vs Argus Level 2's silence to
        outsiders — tests/protocol/test_engines.py::test_visitor_gets_silence)."""
        outsider = PlainSubjectDevice()
        found = outsider.discover(services)
        assert {a.object_id for a in found} == {"safe-hr-office", "camera-lobby"}

    def test_eavesdropper_builds_full_inventory(self, services):
        """Sniffing the plaintext = knowing the building's contents (vs
        Case 1: Argus ciphertext opaque without the session key)."""
        sniffer = PassiveSniffer()
        for service in services:
            sniffer.sniff(service.announce())
        inventory = sniffer.full_inventory()
        assert inventory["safe-hr-office"] == ("unlock",)

    def test_profiles_readable_off_the_wire(self, services):
        blob = services[0].announce().to_bytes()
        assert b"safe" in blob and b"unlock" in blob
        restored = PlainAdvertisement.from_bytes(blob)
        assert restored.functions == ("unlock",)


class TestNoAuthenticity:
    def test_spoofed_service_accepted(self):
        """An attacker's fake lock is indistinguishable (vs Case 2:
        Argus rejects unsigned PROFs / forged chains)."""
        victim = PlainSubjectDevice()
        fake = spoof_service("lock-main-entrance", ("open", "backdoor"))
        victim.hear_announcement(fake.announce())
        assert victim.known_services["lock-main-entrance"].functions == (
            "open", "backdoor",
        )

    def test_spoof_overwrites_genuine_record(self, services):
        """Worse: the fake can shadow a real device's record."""
        victim = PlainSubjectDevice()
        victim.discover(services)
        fake = spoof_service("camera-lobby", ("stream", "attacker-relay"))
        victim.hear_announcement(fake.announce())
        assert "attacker-relay" in victim.known_services["camera-lobby"].functions


class TestNoLevels:
    def test_single_visibility_level(self, services):
        """No differentiated variants, no covert services — two different
        'users' get byte-identical views (vs the three-level quickstart)."""
        alice, eve = PlainSubjectDevice(), PlainSubjectDevice()
        view_a = {a.object_id: a for a in alice.discover(services)}
        view_e = {a.object_id: a for a in eve.discover(services)}
        assert view_a == view_e

    def test_queries_are_plaintext_too(self, services):
        device = PlainSubjectDevice()
        device.discover(services)
        assert device.query_log[0].startswith(b"M-SEARCH")
