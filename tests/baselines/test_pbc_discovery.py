"""PBC secret-handshake baseline tests."""

import pytest

from repro.attributes.model import AttributeSet
from repro.baselines.pbc_discovery import PbcSystem, PbcSystemError
from repro.crypto import meter
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.profile import Profile, sign_profile


@pytest.fixture(scope="module")
def admin():
    return generate_signing_key()


@pytest.fixture
def system(admin):
    system = PbcSystem()
    system.create_group("support")
    system.create_group("other")
    covert = sign_profile(Profile("kiosk", AttributeSet(type="kiosk"), ("flyer",)), admin)
    system.enroll_object("kiosk", {"support": covert})
    system.enroll_subject("sam", ["support"])
    system.enroll_subject("eve", ["other"])
    return system


class TestDiscovery:
    def test_fellow_discovers_covert_profile(self, system):
        profile = system.discover("sam", "kiosk", "support")
        assert profile is not None
        assert profile.functions == ("flyer",)

    def test_nonfellow_gets_nothing(self, system):
        assert system.discover("eve", "kiosk", "other") is None

    def test_subject_without_credential_rejected(self, system):
        with pytest.raises(PbcSystemError):
            system.discover("eve", "kiosk", "support")

    def test_unknown_participants_rejected(self, system):
        with pytest.raises(PbcSystemError):
            system.discover("ghost", "kiosk", "support")

    def test_duplicate_group_rejected(self, system):
        with pytest.raises(PbcSystemError):
            system.create_group("support")


class TestCostProfile:
    def test_two_pairings_per_discovery(self, system):
        """Fig. 6(d)'s anchor: one pairing per side."""
        with meter.metered() as tally:
            system.discover("sam", "kiosk", "support")
        assert tally.total("pairing") == 2

    def test_nonfellow_path_costs_the_same(self, system):
        """Cover traffic: a failed handshake still runs both pairings, so
        timing does not reveal membership."""
        with meter.metered() as tally:
            system.discover("eve", "kiosk", "other")
        assert tally.total("pairing") == 2
