"""ID-based ACL baseline tests."""

import pytest

from repro.attributes.model import AttributeSet
from repro.baselines.id_acl import AclObject, IdAclError, IdAclSystem
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.profile import Profile, sign_profile


@pytest.fixture(scope="module")
def admin():
    return generate_signing_key()


@pytest.fixture
def system(admin):
    system = IdAclSystem()
    for i in range(5):
        prof = sign_profile(Profile(f"o{i}", AttributeSet(type="lock")), admin)
        system.add_object(AclObject(f"o{i}", prof))
    return system


class TestUpdates:
    def test_add_overhead_is_n(self, system):
        report = system.add_subject("alice", {"o0", "o1", "o2"})
        assert report.overhead == 3

    def test_remove_overhead_is_n(self, system):
        system.add_subject("alice", {"o0", "o1", "o2", "o3"})
        report = system.remove_subject("alice")
        assert report.overhead == 4

    def test_objects_record_updates(self, system):
        system.add_subject("alice", {"o0"})
        system.remove_subject("alice")
        assert system.objects["o0"].updates_received == 2
        assert system.objects["o1"].updates_received == 0

    def test_duplicate_subject_rejected(self, system):
        system.add_subject("alice", {"o0"})
        with pytest.raises(IdAclError):
            system.add_subject("alice", {"o1"})

    def test_unknown_object_rejected(self, system):
        with pytest.raises(IdAclError):
            system.add_subject("alice", {"ghost"})

    def test_remove_unknown_rejected(self, system):
        with pytest.raises(IdAclError):
            system.remove_subject("ghost")


class TestDiscovery:
    def test_enumerated_subject_discovers(self, system):
        system.add_subject("alice", {"o0", "o2"})
        profiles = system.discover("alice")
        assert {p.entity_id for p in profiles} == {"o0", "o2"}

    def test_unenrolled_subject_sees_nothing(self, system):
        assert system.discover("stranger") == []

    def test_removed_subject_sees_nothing(self, system):
        system.add_subject("alice", {"o0"})
        system.remove_subject("alice")
        assert system.discover("alice") == []
