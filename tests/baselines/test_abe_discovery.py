"""ABE baseline tests: discovery, real revocation, Table I overheads."""

import pytest

from repro.attributes.model import AttributeSet
from repro.baselines.abe_discovery import AbeSystem, AbeSystemError
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.profile import Profile, sign_profile


@pytest.fixture(scope="module")
def admin():
    return generate_signing_key()


def make_profile(admin, object_id):
    return sign_profile(Profile(object_id, AttributeSet(type="media"), ("play",)), admin)


@pytest.fixture
def system(admin):
    system = AbeSystem()
    system.add_subject("alice", {"dept:X", "pos:staff"})
    system.add_subject("bob", {"dept:X", "pos:manager"})
    system.add_subject("carol", {"dept:Y", "pos:staff"})
    system.deploy_variant("o-x", make_profile(admin, "o-x"), ["dept:X"])
    system.deploy_variant("o-mgr", make_profile(admin, "o-mgr"), ["dept:X", "pos:manager"])
    return system


class TestDiscovery:
    def test_policy_satisfaction(self, system):
        alice = {p.entity_id for p in system.discover("alice")}
        bob = {p.entity_id for p in system.discover("bob")}
        carol = {p.entity_id for p in system.discover("carol")}
        assert alice == {"o-x"}
        assert bob == {"o-x", "o-mgr"}
        assert carol == set()

    def test_unknown_subject_rejected(self, system):
        with pytest.raises(AbeSystemError):
            system.discover("ghost")

    def test_duplicate_subject_rejected(self, system):
        with pytest.raises(AbeSystemError):
            system.add_subject("alice", {"dept:X"})


class TestRevocation:
    def test_revoked_subject_loses_access(self, system):
        """The crucial property: after revocation the old key opens nothing."""
        assert system.discover("alice")
        state = system.subjects["alice"]
        system.remove_subject("alice")
        # simulate the revoked user retrying with her retained key
        system.subjects["alice"] = state
        assert system.discover("alice") == []

    def test_unaffected_categories_keep_access(self, system):
        system.remove_subject("carol")  # dept:Y does not intersect dept:X-only policy
        assert {p.entity_id for p in system.discover("alice")} == {"o-x"}

    def test_peers_rekeyed_and_still_working(self, system):
        system.remove_subject("alice")
        # bob shared attributes with alice -> rekeyed, but must still work
        assert {p.entity_id for p in system.discover("bob")} == {"o-x", "o-mgr"}
        assert system.subjects["bob"].rekeys == 1

    def test_remove_overhead_counts(self, system):
        """xi_o*N + xi_s*(alpha-1): both ciphertext policies mention
        alice's attributes; bob shares dept:X and carol shares pos:staff —
        the attribute-level over-reach (xi_s > 1) §VIII describes: even a
        different-department subject gets rekeyed."""
        report = system.remove_subject("alice")
        assert report.reencrypted_objects == {"o-x", "o-mgr"}
        assert report.rekeyed_subjects == {"bob", "carol"}
        assert report.overhead == 4

    def test_add_overhead_is_one(self, system):
        report = system.add_subject("dave", {"dept:Z"})
        assert report.overhead == 1

    def test_reencryption_counters(self, system):
        system.remove_subject("alice")
        assert all(r.reencryptions == 1 for r in system.ciphertexts)
