"""Predicate language: lexer, parser, evaluator, canonical roundtrip."""

import pytest
from hypothesis import given, strategies as st

from repro.attributes.predicate import (
    And,
    Comparison,
    FALSE,
    Not,
    Or,
    PredicateError,
    TRUE,
    parse_predicate,
)


class TestParsingBasics:
    def test_paper_example(self):
        p = parse_predicate("position=='manager' && department=='X'")
        assert p == And(Comparison("position", "==", "manager"),
                        Comparison("department", "==", "X"))

    def test_or(self):
        p = parse_predicate("a=='1' || b=='2'")
        assert isinstance(p, Or)

    def test_not(self):
        p = parse_predicate("!(a==1)")
        assert isinstance(p, Not)

    def test_precedence_and_binds_tighter(self):
        p = parse_predicate("a==1 || b==2 && c==3")
        assert isinstance(p, Or)
        assert isinstance(p.right, And)

    def test_parentheses_override(self):
        p = parse_predicate("(a==1 || b==2) && c==3")
        assert isinstance(p, And)
        assert isinstance(p.left, Or)

    def test_constants(self):
        assert parse_predicate("true") is TRUE
        assert parse_predicate("false") is FALSE

    def test_double_quotes(self):
        p = parse_predicate('name=="O\'Brien"')
        assert p.evaluate({"name": "O'Brien"})

    def test_escaped_quote(self):
        p = parse_predicate(r"name=='O\'Brien'")
        assert p.evaluate({"name": "O'Brien"})

    def test_numbers(self):
        assert parse_predicate("floor==3").evaluate({"floor": 3})
        assert parse_predicate("temp==21.5").evaluate({"temp": 21.5})
        assert parse_predicate("delta==-2").evaluate({"delta": -2})

    def test_in_operator(self):
        p = parse_predicate("type in ['light', 'hvac']")
        assert p.evaluate({"type": "hvac"})
        assert not p.evaluate({"type": "lock"})

    def test_comparison_operators(self):
        attrs = {"floor": 3}
        assert parse_predicate("floor>=3").evaluate(attrs)
        assert parse_predicate("floor>2").evaluate(attrs)
        assert parse_predicate("floor<=3").evaluate(attrs)
        assert parse_predicate("floor<4").evaluate(attrs)
        assert parse_predicate("floor!=4").evaluate(attrs)


class TestParseErrors:
    @pytest.mark.parametrize("source", [
        "", "&&", "a ==", "a == 'unterminated", "(a==1", "a==1)",
        "a in 'notalist'", "a=='x' &&", "== 'x'", "a == @",
    ])
    def test_malformed_rejected(self, source):
        with pytest.raises(PredicateError):
            parse_predicate(source)


class TestEvaluation:
    def test_missing_attribute_is_false(self):
        assert not parse_predicate("ghost=='x'").evaluate({})

    def test_missing_attribute_under_not_is_true(self):
        assert parse_predicate("!(ghost=='x')").evaluate({})

    def test_type_mismatch_comparison_false(self):
        assert not parse_predicate("name>3").evaluate({"name": "bob"})

    def test_bool_values_not_ordered(self):
        assert not parse_predicate("flag>0").evaluate({"flag": True})

    def test_combinators_via_operators(self):
        p = Comparison("a", "==", 1) & ~Comparison("b", "==", 2)
        assert p.evaluate({"a": 1, "b": 3})
        assert not p.evaluate({"a": 1, "b": 2})


class TestCanonicalRoundtrip:
    @pytest.mark.parametrize("source", [
        "position=='manager' && department=='X'",
        "a==1 || b==2 && c==3",
        "!(x=='y')",
        "type in ['light', 'hvac']",
        "floor>=2 && floor<10",
        "true",
        "flag==true && other==false",
    ])
    def test_str_reparses_to_same_ast(self, source):
        p = parse_predicate(source)
        assert parse_predicate(str(p)) == p

    @given(st.recursive(
        st.builds(
            Comparison,
            st.sampled_from(["a", "b", "dept"]),
            st.sampled_from(["==", "!=", "<", ">="]),
            st.one_of(st.integers(-100, 100), st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=10)),
        ),
        lambda children: st.one_of(
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Not, children),
        ),
        max_leaves=6,
    ))
    def test_roundtrip_property(self, predicate):
        assert parse_predicate(str(predicate)) == predicate


class TestAbeConversion:
    def test_and_of_equalities(self):
        p = parse_predicate("position=='manager' && department=='X'")
        assert p.to_abe_attributes() == ["department:X", "position:manager"]

    def test_single_equality(self):
        assert parse_predicate("a=='x'").to_abe_attributes() == ["a:x"]

    def test_or_not_expressible(self):
        with pytest.raises(PredicateError):
            parse_predicate("a=='x' || b=='y'").to_abe_attributes()

    def test_inequality_not_expressible(self):
        with pytest.raises(PredicateError):
            parse_predicate("floor>=3").to_abe_attributes()


class TestAttributeNames:
    def test_collects_names(self):
        p = parse_predicate("a==1 && (b==2 || !(c==3))")
        assert p.attribute_names() == {"a", "b", "c"}
