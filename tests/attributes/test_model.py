"""AttributeSet tests: typing, sensitivity firewall, canonical encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.attributes.model import SENSITIVE_PREFIX, AttributeSet, is_sensitive_name

attr_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="\x1f"),
    min_size=1, max_size=20,
).filter(lambda s: not s.startswith(SENSITIVE_PREFIX))
attr_values = st.one_of(
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters="\x1f"), max_size=30),
    st.integers(min_value=-10**9, max_value=10**9),
    st.booleans(),
)


class TestConstruction:
    def test_kwargs(self):
        attrs = AttributeSet(position="manager", floor=3)
        assert attrs["position"] == "manager"
        assert attrs["floor"] == 3

    def test_mapping(self):
        attrs = AttributeSet({"a": 1})
        assert dict(attrs) == {"a": 1}

    def test_sensitive_name_rejected(self):
        """The sensitivity firewall: sensitive names can never enter a
        PROF-bound attribute set."""
        with pytest.raises(ValueError, match="sensitive attribute"):
            AttributeSet({"sensitive:depressed": True})

    def test_bad_value_type_rejected(self):
        with pytest.raises(TypeError):
            AttributeSet({"a": [1, 2]})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            AttributeSet({"": 1})


class TestSemantics:
    def test_equality_order_insensitive(self):
        assert AttributeSet(a=1, b=2) == AttributeSet(b=2, a=1)

    def test_hashable(self):
        assert hash(AttributeSet(a=1)) == hash(AttributeSet(a=1))
        assert {AttributeSet(a=1): "x"}[AttributeSet(a=1)] == "x"

    def test_updated_is_functional(self):
        base = AttributeSet(a=1)
        changed = base.updated(a=2, b=3)
        assert base["a"] == 1 and changed["a"] == 2 and changed["b"] == 3

    def test_without(self):
        assert AttributeSet(a=1, b=2).without("a") == AttributeSet(b=2)

    def test_flatten(self):
        assert AttributeSet(dept="X", pos="mgr").flatten() == ["dept:X", "pos:mgr"]


class TestEncoding:
    def test_roundtrip(self):
        attrs = AttributeSet(s="text", i=42, f=2.5, b=True, b2=False)
        assert AttributeSet.from_bytes(attrs.to_bytes()) == attrs

    def test_empty_roundtrip(self):
        assert AttributeSet.from_bytes(AttributeSet().to_bytes()) == AttributeSet()

    def test_canonical_sorted(self):
        """Same attrs -> same bytes regardless of insertion order, so
        admin signatures over PROFs are deterministic."""
        a = AttributeSet({"x": 1, "y": 2}).to_bytes()
        b = AttributeSet({"y": 2, "x": 1}).to_bytes()
        assert a == b

    def test_bool_not_confused_with_int(self):
        attrs = AttributeSet(flag=True, num=1)
        restored = AttributeSet.from_bytes(attrs.to_bytes())
        assert restored["flag"] is True
        assert restored["num"] == 1 and restored["num"] is not True

    def test_newline_rejected(self):
        with pytest.raises(ValueError):
            AttributeSet(note="line1\nline2").to_bytes()

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            AttributeSet.from_bytes(b"not a valid encoding")

    @given(st.dictionaries(attr_names, attr_values, max_size=8))
    def test_roundtrip_property(self, attrs):
        original = AttributeSet(attrs)
        assert AttributeSet.from_bytes(original.to_bytes()) == original


class TestSensitiveNames:
    def test_predicate(self):
        assert is_sensitive_name("sensitive:debt")
        assert not is_sensitive_name("position")
