"""In-memory discovery orchestration: the 3-in-1 concurrent behaviour."""

import pytest

from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3
from repro.protocol.discovery import discover, run_round
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


@pytest.fixture
def fleet(thermometer, media, kiosk):
    return [thermometer, media, kiosk]


class TestConcurrentDiscovery:
    def test_all_three_levels_in_one_round(self, staff, fleet):
        result = discover(staff, fleet)
        levels = {s.object_id: s.level_seen for s in result.services}
        assert levels == {"thermo-1": 1, "media-1": 2, "kiosk-1": 2}

    def test_fellow_sees_level3(self, fellow, fleet):
        result = discover(fellow, fleet)
        levels = {s.object_id: s.level_seen for s in result.services}
        assert levels["kiosk-1"] == 3
        assert levels["thermo-1"] == 1

    def test_visitor_sees_only_public_and_kiosk_face(self, visitor, fleet):
        result = discover(visitor, fleet)
        by_id = {s.object_id: s for s in result.services}
        assert set(by_id) == {"thermo-1", "kiosk-1"}
        assert by_id["kiosk-1"].level_seen == 2

    def test_result_by_level_partition(self, fellow, fleet):
        result = discover(fellow, fleet)
        by_level = result.by_level
        assert sum(len(v) for v in by_level.values()) == len(result.services)

    def test_empty_fleet(self, staff):
        result = discover(staff, [])
        assert result.services == []


class TestOpAccounting:
    def test_level1_op_counts(self, staff, thermometer):
        """§IX-B: Level 1 subject verifies one signature, object none."""
        subject = SubjectEngine(staff)
        objects = {thermometer.object_id: ObjectEngine(thermometer)}
        result = run_round(subject, objects)
        assert result.subject_ops.total("ecdsa_verify") == 1
        assert result.subject_ops.total("ecdsa_sign") == 0
        assert result.object_ops[thermometer.object_id].total("ecdsa_sign") == 0

    def test_level2_op_counts_warm(self, staff, media):
        """§IX-B steady state: 1 sign, 3 verifies, 2 ECDH per side."""
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media)}
        run_round(subject, objects)  # warm-up (intermediate CA caching)
        result = run_round(subject, objects)
        s, o = result.subject_ops, result.object_ops[media.object_id]
        for ops in (s, o):
            assert ops.total("ecdsa_sign") == 1
            assert ops.total("ecdsa_verify") == 3
            assert ops.total("ecdh_gen") == 1
            assert ops.total("ecdh_derive") == 1

    def test_level23_costs_match_paper(self, staff, fellow, media, kiosk):
        """Calibrated cost of a warm discovery ≈ 27.4 / 78.2 ms, and Level
        2 vs Level 3 differ by far less than 1 ms (§VI-A)."""
        costs = {}
        for creds, obj in ((staff, media), (fellow, kiosk)):
            subject = SubjectEngine(creds)
            objects = {obj.object_id: ObjectEngine(obj)}
            run_round(subject, objects)
            result = run_round(subject, objects)
            costs[obj.object_id] = (
                NEXUS6.meter_cost_ms(result.subject_ops),
                RASPBERRY_PI3.meter_cost_ms(result.object_ops[obj.object_id]),
            )
        for subject_ms, object_ms in costs.values():
            assert subject_ms == pytest.approx(27.4, abs=1.5)
            assert object_ms == pytest.approx(78.2, abs=2.5)
        l2, l3 = costs["media-1"], costs["kiosk-1"]
        assert abs(l3[0] - l2[0]) < 1.0
        assert abs(l3[1] - l2[1]) < 1.0
