"""Wire-message tests: serialization, framing, §IX-A byte accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol import messages
from repro.protocol.errors import MessageFormatError
from repro.protocol.messages import Que1, Que2, Res1, Res1Level1, Res2, parse_message

NONCE = b"n" * 28
MAC = b"m" * 32


class TestQue1:
    def test_roundtrip(self):
        q = Que1(NONCE)
        assert Que1.from_bytes(q.to_bytes()) == q

    def test_nominal_size_is_28(self):
        assert Que1.nominal_size() == 28

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(MessageFormatError):
            Que1(b"short")

    def test_wrong_type_rejected(self):
        with pytest.raises(MessageFormatError):
            Que1.from_bytes(b"\x99" + NONCE)


class TestRes1:
    def test_roundtrip(self):
        r = Res1(NONCE, b"certchain", b"k" * 64, b"s" * 64)
        assert Res1.from_bytes(r.to_bytes()) == r

    def test_nominal_size_is_772(self):
        """§IX-A: Level 2/3 RES1 is 772 B."""
        assert Res1.nominal_size() == 772

    def test_level1_nominal_is_200(self):
        assert Res1Level1.nominal_size() == 200

    def test_truncated_rejected(self):
        r = Res1(NONCE, b"cert", b"k", b"s")
        with pytest.raises(MessageFormatError):
            Res1.from_bytes(r.to_bytes()[:-3])

    def test_trailing_bytes_rejected(self):
        r = Res1(NONCE, b"cert", b"k", b"s")
        with pytest.raises(MessageFormatError):
            Res1.from_bytes(r.to_bytes() + b"x")


class TestQue2:
    def _mk(self, mac_s3=MAC):
        return Que2(b"prof", b"cert", b"k" * 64, b"sig", MAC, mac_s3)

    def test_roundtrip_with_mac3(self):
        q = self._mk()
        assert Que2.from_bytes(q.to_bytes()) == q

    def test_roundtrip_without_mac3(self):
        q = self._mk(mac_s3=None)
        restored = Que2.from_bytes(q.to_bytes())
        assert restored.mac_s3 is None
        assert restored == q

    def test_nominal_v3_is_1008(self):
        """§IX-A: QUE2 is 1008 B when MAC_S3 is mandatory (v3.0)."""
        assert Que2.nominal_size(with_mac3=True) == 1008

    def test_mac3_adds_exactly_32(self):
        """§VI-B 'Overhead of Extensions': +32 B only."""
        assert Que2.nominal_size(True) - Que2.nominal_size(False) == 32

    def test_bad_mac_length_rejected(self):
        with pytest.raises(MessageFormatError):
            Que2(b"p", b"c", b"k", b"s", b"short")

    def test_signed_portion_excludes_macs(self):
        a = self._mk(mac_s3=MAC)
        b = Que2(b"prof", b"cert", b"k" * 64, b"sig", b"x" * 32, None)
        assert a.signed_portion() == b.signed_portion()


class TestRes2:
    def test_roundtrip(self):
        r = Res2(b"ciphertext", MAC)
        assert Res2.from_bytes(r.to_bytes()) == r

    def test_nominal_is_280(self):
        assert Res2.nominal_size() == 280

    def test_single_mac_slot(self):
        """RES2 carries exactly ONE MAC — the structural identity between
        Level 2 and Level 3 answers (§VI-B)."""
        r = Res2(b"ct", MAC)
        parsed = Res2.from_bytes(r.to_bytes())
        assert parsed.mac_o == MAC


class TestExchangeTotals:
    def test_level1_total_228(self):
        assert messages.level1_exchange_nominal() == 228

    def test_level23_total_2088(self):
        assert messages.level23_exchange_nominal() == 2088


class TestParseDispatch:
    def test_dispatch(self):
        q = Que1(NONCE)
        assert isinstance(parse_message(q.to_bytes()), Que1)
        r = Res2(b"ct", MAC)
        assert isinstance(parse_message(r.to_bytes()), Res2)

    def test_empty_rejected(self):
        with pytest.raises(MessageFormatError):
            parse_message(b"")

    def test_unknown_type_rejected(self):
        with pytest.raises(MessageFormatError):
            parse_message(b"\xee\x00")

    @given(st.binary(min_size=1, max_size=200))
    def test_fuzz_never_crashes(self, data):
        """Arbitrary bytes either parse or raise MessageFormatError —
        nothing else (no unhandled struct errors)."""
        try:
            parse_message(data)
        except MessageFormatError:
            pass
