"""Service directory: caching, staleness, revocation reconciliation."""

import pytest

from repro.backend import Backend, ChurnEngine
from repro.protocol.directory import ServiceDirectory


@pytest.fixture
def world():
    backend = Backend()
    backend.add_policy("p", "position=='staff'", "type=='multimedia'")
    user = backend.register_subject("dir-user", {"position": "staff"})
    objects = [
        backend.register_object(
            f"m{i}", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("position=='staff'", ("play",))],
        )
        for i in range(3)
    ]
    thermo = backend.register_object("t0", {"type": "thermometer"}, level=1,
                                     functions=("read",))
    return backend, user, objects + [thermo]


class TestCaching:
    def test_first_refresh_adds_everything(self, world):
        _, user, fleet = world
        directory = ServiceDirectory(user)
        delta = directory.refresh(fleet)
        assert sorted(delta["added"]) == ["m0", "m1", "m2", "t0"]
        assert len(directory.services()) == 4

    def test_second_refresh_is_quiet(self, world):
        _, user, fleet = world
        directory = ServiceDirectory(user)
        directory.refresh(fleet)
        delta = directory.refresh(fleet)
        assert delta == {"added": [], "updated": [], "removed": []}

    def test_lookup_and_function_search(self, world):
        _, user, fleet = world
        directory = ServiceDirectory(user)
        directory.refresh(fleet)
        assert directory.lookup("m1").functions == ("play",)
        assert directory.lookup("ghost") is None
        assert {s.object_id for s in directory.find_by_function("play")} == {"m0", "m1", "m2"}
        assert [s.object_id for s in directory.find_by_function("read")] == ["t0"]


class TestStalenessAndRemoval:
    def test_missing_object_marked_stale_then_evicted(self, world):
        _, user, fleet = world
        directory = ServiceDirectory(user, max_age=1)
        directory.refresh(fleet)
        shrunk = fleet[1:]  # m0 disappears
        delta1 = directory.refresh(shrunk)
        assert delta1["removed"] == []       # grace period
        assert directory.stale() == ["m0"]
        delta2 = directory.refresh(shrunk)
        assert delta2["removed"] == ["m0"]
        assert directory.lookup("m0") is None

    def test_reappearing_object_survives(self, world):
        _, user, fleet = world
        directory = ServiceDirectory(user, max_age=1)
        directory.refresh(fleet)
        directory.refresh(fleet[1:])   # m0 missing once
        delta = directory.refresh(fleet)  # back again
        assert "m0" not in delta["added"]  # it never left the cache
        assert directory.stale() == []

    def test_revocation_disappears_after_refresh(self, world):
        """The §XI point: a fresh round shows the revoked subject less."""
        backend, user, fleet = world
        directory = ServiceDirectory(user, max_age=0)
        directory.refresh(fleet)
        assert len(directory.services()) == 4

        ChurnEngine(backend).remove_subject("dir-user")
        delta = directory.refresh(fleet)
        # Level 2 objects now refuse her; only the Level 1 thermometer stays
        assert sorted(delta["removed"]) == ["m0", "m1", "m2"]
        assert [s.object_id for s in directory.services()] == ["t0"]

    def test_variant_change_reported_as_update(self, world):
        backend, user, fleet = world
        directory = ServiceDirectory(user)
        directory.refresh(fleet)
        # promote the user: different variant on the next round
        from repro.backend.registration import ObjectVariant
        from repro.attributes.predicate import parse_predicate
        from repro.pki.profile import Profile, sign_profile

        m0 = fleet[0]
        prof = sign_profile(
            Profile("m0", m0.public_profile.attributes, ("play", "admin"), "vip"),
            backend.root_key,
        )
        m0.level2_variants.insert(0, ObjectVariant(parse_predicate("true"), prof))
        delta = directory.refresh(fleet)
        assert "m0" in delta["updated"]
        assert directory.lookup("m0").functions == ("play", "admin")
