"""Engine robustness: hostile/garbage inputs must never crash an engine.

The §VII threat model lets attackers inject arbitrary bytes. The engines'
contract: for any input, either a well-formed reply, or None + a recorded
error — never an unhandled exception (a crashing device is a DoS the
protocol layer shouldn't hand out for free).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.protocol.messages import Que1, Que2, Res1, Res1Level1, Res2
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


@pytest.fixture
def fresh_object(media):
    return ObjectEngine(media)


@pytest.fixture
def fresh_subject(staff):
    engine = SubjectEngine(staff)
    engine.start_round()
    return engine


class TestObjectEngineRobustness:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        prof=st.binary(max_size=64), cert=st.binary(max_size=64),
        kexm=st.binary(max_size=80), sig=st.binary(max_size=80),
    )
    def test_garbage_que2_never_crashes(self, fresh_object, prof, cert, kexm, sig):
        que2 = Que2(prof, cert, kexm, sig, b"\x00" * 32, b"\x00" * 32)
        # without a session it is dropped; with one, every field fails closed
        assert fresh_object.handle_que2(que2, "peer") is None

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        prof=st.binary(max_size=64), cert=st.binary(max_size=64),
        kexm=st.binary(max_size=80), sig=st.binary(max_size=80),
    )
    def test_garbage_que2_with_open_session(self, media, prof, cert, kexm, sig):
        engine = ObjectEngine(media)
        from repro.crypto.primitives import fresh_nonce

        engine.handle_que1(Que1(fresh_nonce()), "peer")
        que2 = Que2(prof, cert, kexm, sig, b"\x00" * 32, None)
        assert engine.handle_que2(que2, "peer") is None
        assert engine.errors  # the failure was recorded, not swallowed

    def test_session_table_bounded(self, media):
        """A flood of QUE1s cannot exhaust object memory."""
        from repro.protocol.object import SESSION_LIMIT
        from repro.crypto.primitives import fresh_nonce

        engine = ObjectEngine(media)
        for i in range(SESSION_LIMIT + 50):
            engine.handle_que1(Que1(fresh_nonce()), f"peer-{i}")
        assert len(engine._sessions) <= SESSION_LIMIT

    def test_nonce_table_bounded(self, media):
        from repro.protocol.object import SEEN_NONCE_LIMIT
        from repro.crypto.primitives import fresh_nonce

        engine = ObjectEngine(media)
        for i in range(SEEN_NONCE_LIMIT + 50):
            engine.handle_que1(Que1(fresh_nonce()), "peer")
        assert len(engine._seen_nonces) <= SEEN_NONCE_LIMIT


class TestSubjectEngineRobustness:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        cert=st.binary(max_size=64), kexm=st.binary(max_size=80),
        sig=st.binary(max_size=80),
    )
    def test_garbage_res1_never_crashes(self, fresh_subject, cert, kexm, sig):
        res1 = Res1(b"o" * 28, cert, kexm, sig)
        assert fresh_subject.handle_res1(res1, "attacker") is None

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(profile=st.binary(max_size=256))
    def test_garbage_level1_profile_never_crashes(self, fresh_subject, profile):
        assert fresh_subject.handle_res1_level1(Res1Level1(profile), "x") is None

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ciphertext=st.binary(max_size=256))
    def test_garbage_res2_never_crashes(self, staff, media, ciphertext):
        from repro.protocol.object import ObjectEngine as OE

        subject = SubjectEngine(staff)
        obj = OE(media)
        que1 = subject.start_round()
        res1 = obj.handle_que1(que1, staff.subject_id)
        subject.handle_res1(res1, media.object_id)
        res2 = Res2(ciphertext, b"\x00" * 32)
        assert subject.handle_res2(res2, media.object_id) is None

    def test_res2_from_unknown_peer_dropped(self, fresh_subject):
        assert fresh_subject.handle_res2(Res2(b"ct", b"\x00" * 32), "ghost") is None

    def test_res1_before_round_dropped(self, staff):
        engine = SubjectEngine(staff)  # no start_round()
        res1 = Res1(b"o" * 28, b"c", b"k", b"s")
        assert engine.handle_res1(res1, "x") is None
