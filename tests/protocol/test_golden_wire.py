"""Golden-bytes pinning for the wire codec.

``golden_wire.json`` was generated from the pre-zero-copy codec: one
entry per message encoding (all seven types, QUE2 with and without
MAC_S3, plus QUE2's signed portion), each as hex + sha256 + length.
The zero-copy rewrite must reproduce every byte — these tests are the
regression wall the codec optimizations build against.

The second half pins the *decode* contract: ``from_bytes`` accepts a
``memoryview`` without copying the buffer to split it, and truncation /
trailing-byte errors keep their exact pre-refactor messages (callers
and tests match on them).
"""

import hashlib
import json
import struct
from pathlib import Path

import pytest

from repro.protocol.errors import MessageFormatError
from repro.protocol.messages import (
    Que1,
    Que2,
    Res1,
    Res1Level1,
    Res2,
    Rque,
    Rres,
    _unpack_fields,
    parse_message,
)

GOLDEN = json.loads((Path(__file__).parent / "golden_wire.json").read_text())

# The exact vectors the fixture was generated from (arbitrary but fixed;
# lengths match the real fields where the codec cares about lengths).
NONCE = bytes(range(28))
NONCE2 = bytes(range(100, 128))
MAC = b"\xAA" * 32
MAC2 = b"\xBB" * 32
KEXM = bytes(range(64))
SIG = bytes([0x5A, 0xA5]) * 32
CERT = b"\x01certificate-chain-bytes\x00\xff" * 7
PROF = b"profile-body\x10\x20" * 9
CT = b"\x00\x11\x22\x33ciphertext-payload" * 11
TICKET = b"sealed-ticket\xde\xad" * 13


def _messages() -> dict:
    return {
        "que1": Que1(NONCE),
        "res1_level1": Res1Level1(PROF),
        "res1": Res1(NONCE2, CERT, KEXM, SIG),
        "que2_with_mac3": Que2(PROF, CERT, KEXM, SIG, MAC, MAC2),
        "que2_without_mac3": Que2(PROF, CERT, KEXM, SIG, MAC, None),
        "res2": Res2(CT, MAC),
        "rque": Rque(TICKET, NONCE, MAC2),
        "rres": Rres(NONCE2, CT, MAC),
    }


@pytest.mark.parametrize("name", sorted(set(GOLDEN) - {"que2_signed_portion"}))
def test_encoding_matches_golden_bytes(name):
    wire = _messages()[name].to_bytes()
    golden = GOLDEN[name]
    assert len(wire) == golden["len"]
    assert hashlib.sha256(wire).hexdigest() == golden["sha256"]
    assert wire.hex() == golden["hex"]


def test_que2_signed_portion_matches_golden_bytes():
    signed = _messages()["que2_with_mac3"].signed_portion()
    golden = GOLDEN["que2_signed_portion"]
    assert len(signed) == golden["len"]
    assert signed.hex() == golden["hex"]
    # The signed portion excludes the MACs: identical for both variants.
    assert _messages()["que2_without_mac3"].signed_portion() == signed


@pytest.mark.parametrize("name", sorted(set(GOLDEN) - {"que2_signed_portion"}))
def test_golden_bytes_round_trip(name):
    wire = bytes.fromhex(GOLDEN[name]["hex"])
    message = parse_message(wire)
    assert message == _messages()[name]
    assert message.to_bytes() == wire


@pytest.mark.parametrize("name", sorted(set(GOLDEN) - {"que2_signed_portion"}))
def test_from_bytes_accepts_memoryview(name):
    wire = bytes.fromhex(GOLDEN[name]["hex"])
    message = parse_message(memoryview(wire))
    assert message == _messages()[name]
    assert message.to_bytes() == wire


def test_to_bytes_is_memoized():
    message = Res2(CT, MAC)
    assert message.to_bytes() is message.to_bytes()


def test_from_bytes_reuses_received_buffer_as_wire():
    wire = bytes.fromhex(GOLDEN["res2"]["hex"])
    # Parsing bytes stashes the received buffer itself as the canonical
    # encoding — parse -> re-serialize (transcripts, caches) is free.
    assert parse_message(wire).to_bytes() is wire


# -- decode error contract (verbatim messages) ---------------------------------


def test_unpack_fields_on_memoryview():
    packed = struct.pack(">I", 3) + b"abc" + struct.pack(">I", 0)
    assert _unpack_fields(memoryview(packed), 2, "X") == [b"abc", b""]


def test_truncated_field_header_verbatim():
    with pytest.raises(MessageFormatError) as excinfo:
        _unpack_fields(b"\x00\x00", 1, "X")
    assert str(excinfo.value) == "X: truncated field header"


def test_truncated_field_body_verbatim():
    with pytest.raises(MessageFormatError) as excinfo:
        _unpack_fields(struct.pack(">I", 10) + b"ab", 1, "X")
    assert str(excinfo.value) == "X: truncated field body"


def test_trailing_bytes_verbatim():
    with pytest.raises(MessageFormatError) as excinfo:
        _unpack_fields(struct.pack(">I", 1) + b"a" + b"xyz", 1, "X")
    assert str(excinfo.value) == "X: 3 trailing bytes"


def test_message_level_truncation_errors_verbatim():
    res1_wire = bytes.fromhex(GOLDEN["res1"]["hex"])
    with pytest.raises(MessageFormatError) as excinfo:
        Res1.from_bytes(res1_wire[:-10])
    assert str(excinfo.value) == "RES1: truncated field body"

    with pytest.raises(MessageFormatError) as excinfo:
        Res1.from_bytes(res1_wire + b"!!")
    assert str(excinfo.value) == "RES1: 2 trailing bytes"

    que2_wire = bytes.fromhex(GOLDEN["que2_with_mac3"]["hex"])
    with pytest.raises(MessageFormatError) as excinfo:
        Que2.from_bytes(que2_wire[:4])
    assert str(excinfo.value) == "QUE2: truncated field header"
