"""Version ladder behaviour: what v2.0 leaks and v3.0 closes (§VI-B)."""

import pytest

from repro.attacks.channel import run_exchange
from repro.attacks.distinguisher import res2_length_spread, subject_advantage
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version


class TestVersionFlags:
    def test_v1_no_level3(self):
        assert not Version.V1_0.supports_level3
        assert Version.V2_0.supports_level3

    def test_only_v3_indistinguishable(self):
        assert Version.V3_0.indistinguishable
        assert not Version.V2_0.indistinguishable


class TestV1:
    def test_v1_discovers_level2(self, staff, media):
        capture = run_exchange(SubjectEngine(staff, Version.V1_0),
                               ObjectEngine(media, Version.V1_0))
        assert capture.outcome.level_seen == 2

    def test_v1_que2_never_carries_mac3(self, fellow, media):
        capture = run_exchange(SubjectEngine(fellow, Version.V1_0),
                               ObjectEngine(media, Version.V1_0))
        assert capture.que2.mac_s3 is None

    def test_v1_cannot_reach_level3(self, fellow, kiosk):
        """Under v1.0 the kiosk can only ever serve its Level 2 face."""
        capture = run_exchange(SubjectEngine(fellow, Version.V1_0),
                               ObjectEngine(kiosk, Version.V1_0))
        assert capture.outcome.level_seen == 2


class TestV2Leaks:
    def test_que2_structure_differs(self, fellow, staff, media, kiosk):
        """v2.0: MAC_S3 present iff the subject seeks Level 3 — a perfect
        structural distinguisher (advantage 1.0)."""
        l3 = [run_exchange(SubjectEngine(fellow, Version.V2_0),
                           ObjectEngine(kiosk, Version.V2_0)) for _ in range(4)]
        l2 = [run_exchange(SubjectEngine(staff, Version.V2_0),
                           ObjectEngine(media, Version.V2_0)) for _ in range(4)]
        assert subject_advantage(l3, l2) == 1.0

    def test_v2_still_secures_sensitive_attributes(self, fellow, kiosk):
        """v2.0's actual guarantee (sensitive attribute secrecy) holds."""
        capture = run_exchange(SubjectEngine(fellow, Version.V2_0),
                               ObjectEngine(kiosk, Version.V2_0))
        assert capture.outcome.level_seen == 3


class TestV3Closure:
    def test_que2_always_carries_mac3(self, staff, visitor, media):
        """Even subjects with no sensitive attribute send MAC_S3 (cover-up)."""
        for creds in (staff, visitor):
            capture = run_exchange(SubjectEngine(creds, Version.V3_0),
                                   ObjectEngine(media, Version.V3_0))
            if capture.que2 is not None:
                assert capture.que2.mac_s3 is not None

    def test_advantage_zero(self, fellow, staff, media, kiosk):
        l3 = [run_exchange(SubjectEngine(fellow, Version.V3_0),
                           ObjectEngine(kiosk, Version.V3_0)) for _ in range(4)]
        l2 = [run_exchange(SubjectEngine(staff, Version.V3_0),
                           ObjectEngine(media, Version.V3_0)) for _ in range(4)]
        assert subject_advantage(l3, l2) == 0.0

    def test_res2_constant_length_per_object(self, backend):
        """v3.0 pads every variant of one object to equal ciphertext
        length, so which variant was served cannot be read off the wire."""
        obj = backend.register_object(
            "pad-kiosk", {"type": "kiosk"}, level=3,
            functions=("mag",),
            variants=[("true", ("a-very-long-magazine-dispensing-function-name",))],
            covert_functions={"sensitive:serves-support": ("x",)},
        )
        fellow = backend.register_subject(
            "pad-fellow", {"position": "student"}, ("sensitive:needs-support",)
        )
        plain = backend.register_subject("pad-plain", {"position": "student"})
        captures = [
            run_exchange(SubjectEngine(fellow, Version.V3_0), ObjectEngine(obj, Version.V3_0)),
            run_exchange(SubjectEngine(plain, Version.V3_0), ObjectEngine(obj, Version.V3_0)),
        ]
        assert captures[0].outcome.level_seen == 3
        assert captures[1].outcome.level_seen == 2
        assert res2_length_spread(captures) == 0

    def test_v2_res2_lengths_leak(self, backend):
        """Contrast: without padding (v2.0) different variants produce
        different ciphertext lengths when profile sizes differ enough."""
        obj = backend.register_object(
            "leak-kiosk", {"type": "kiosk"}, level=3,
            functions=("mag",),
            variants=[("true", ("a-very-long-magazine-dispensing-function-name-" + "x" * 40,))],
            covert_functions={"sensitive:serves-support": ("y",)},
        )
        fellow = backend.register_subject(
            "leak-fellow", {"position": "student"}, ("sensitive:needs-support",)
        )
        plain = backend.register_subject("leak-plain", {"position": "student"})
        captures = [
            run_exchange(SubjectEngine(fellow, Version.V2_0), ObjectEngine(obj, Version.V2_0)),
            run_exchange(SubjectEngine(plain, Version.V2_0), ObjectEngine(obj, Version.V2_0)),
        ]
        assert res2_length_spread(captures) > 0
