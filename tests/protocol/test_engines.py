"""Subject/Object engine behaviour: the handshake state machines."""

import pytest

from repro.attacks.channel import run_exchange
from repro.protocol.errors import (
    AuthenticationError,
    FreshnessError,
    SessionError,
    VisibilityError,
)
from repro.protocol.messages import Que2, Res1, Res1Level1
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version


class TestLevel1Flow:
    def test_discovery(self, subject_engine, thermo_engine):
        capture = run_exchange(subject_engine, thermo_engine)
        assert capture.outcome is not None
        assert capture.outcome.level_seen == 1
        assert capture.outcome.functions == ("read_temperature",)

    def test_duplicate_que1_dropped(self, subject_engine, thermo_engine):
        que1 = subject_engine.start_round()
        assert thermo_engine.handle_que1(que1, "peer") is not None
        assert thermo_engine.handle_que1(que1, "peer") is None
        assert any(isinstance(e, FreshnessError) for e in thermo_engine.errors)

    def test_tampered_profile_rejected(self, subject_engine, thermo_engine):
        que1 = subject_engine.start_round()
        res1 = thermo_engine.handle_que1(que1, subject_engine.creds.subject_id)
        tampered = Res1Level1(res1.profile_bytes[:-1] + b"\x00")
        assert subject_engine.handle_res1_level1(tampered, "thermo-1") is None
        assert any(isinstance(e, AuthenticationError) for e in subject_engine.errors)


class TestLevel2Flow:
    def test_staff_gets_staff_variant(self, subject_engine, media_engine):
        capture = run_exchange(subject_engine, media_engine)
        assert capture.outcome.level_seen == 2
        assert capture.outcome.functions == ("play",)

    def test_manager_gets_manager_variant(self, manager, media_engine):
        capture = run_exchange(SubjectEngine(manager), media_engine)
        assert capture.outcome.functions == ("play", "cast", "admin")

    def test_visitor_gets_silence(self, visitor, media_engine):
        capture = run_exchange(SubjectEngine(visitor), media_engine)
        assert capture.outcome is None
        assert "object stayed silent after QUE2" in capture.notes
        assert any(isinstance(e, VisibilityError) for e in media_engine.errors)

    def test_profile_verified_against_cert_identity(self, staff, manager, media):
        """A QUE2 carrying Alice's certificate but Bob's PROF must fail —
        identity binding between CERT and PROF."""
        engine = ObjectEngine(media)
        subject = SubjectEngine(staff)
        que1 = subject.start_round()
        res1 = engine.handle_que1(que1, staff.subject_id)
        que2 = subject.handle_res1(res1, media.object_id)
        frankenstein = Que2(
            profile_bytes=manager.profile.to_bytes(),  # someone else's PROF
            cert_chain_bytes=que2.cert_chain_bytes,
            kexm=que2.kexm,
            signature=que2.signature,
            mac_s2=que2.mac_s2,
            mac_s3=que2.mac_s3,
        )
        assert engine.handle_que2(frankenstein, staff.subject_id) is None
        assert any(isinstance(e, AuthenticationError) for e in engine.errors)

    def test_que2_without_session_rejected(self, staff, media_engine):
        subject = SubjectEngine(staff)
        # craft a valid-looking QUE2 without ever sending QUE1
        que2 = Que2(b"p", b"c", b"k" * 64, b"s", b"m" * 32, b"m" * 32)
        assert media_engine.handle_que2(que2, staff.subject_id) is None
        assert any(isinstance(e, SessionError) for e in media_engine.errors)

    def test_revoked_subject_rejected(self, backend, media):
        victim = backend.register_subject("rev-victim", {"position": "staff"})
        engine = ObjectEngine(media)
        engine.creds.revoked_subjects.add("rev-victim")
        try:
            capture = run_exchange(SubjectEngine(victim), engine)
            assert capture.outcome is None
        finally:
            engine.creds.revoked_subjects.discard("rev-victim")

    def test_tampered_kexm_aborts(self, staff, media):
        """Flipping KEXM_O invalidates the RES1 signature: subject aborts."""
        engine = ObjectEngine(media)
        subject = SubjectEngine(staff)

        def tamper(name, message):
            if name == "res1":
                bad_kexm = bytearray(message.kexm)
                bad_kexm[0] ^= 1
                return Res1(message.r_o, message.cert_chain_bytes,
                            bytes(bad_kexm), message.signature)
            return message

        capture = run_exchange(subject, engine, tamper=tamper)
        assert capture.outcome is None
        assert any(isinstance(e, AuthenticationError) for e in subject.errors)

    def test_tampered_mac_s2_rejected(self, staff, media):
        engine = ObjectEngine(media)

        def tamper(name, message):
            if name == "que2":
                return Que2(message.profile_bytes, message.cert_chain_bytes,
                            message.kexm, message.signature,
                            b"\x00" * 32, message.mac_s3)
            return message

        capture = run_exchange(SubjectEngine(staff), engine, tamper=tamper)
        assert capture.outcome is None
        assert any(isinstance(e, AuthenticationError) for e in engine.errors)

    def test_tampered_res2_rejected(self, staff, media):
        engine = ObjectEngine(media)
        subject = SubjectEngine(staff)

        def tamper(name, message):
            if name == "res2":
                from repro.protocol.messages import Res2
                return Res2(message.ciphertext, b"\x00" * 32)
            return message

        capture = run_exchange(subject, engine, tamper=tamper)
        assert capture.outcome is None
        assert any(isinstance(e, AuthenticationError) for e in subject.errors)


class TestLevel3Flow:
    def test_fellow_gets_covert_variant(self, fellow_engine, kiosk_engine):
        capture = run_exchange(fellow_engine, kiosk_engine)
        assert capture.outcome.level_seen == 3
        assert capture.outcome.functions == ("dispense_support_flyer",)
        assert capture.outcome.via_group is not None

    def test_nonfellow_gets_level2_face(self, subject_engine, kiosk_engine):
        """The double-faced role: cover-up key users get the magazine."""
        capture = run_exchange(subject_engine, kiosk_engine)
        assert capture.outcome.level_seen == 2
        assert capture.outcome.functions == ("dispense_magazine",)

    def test_fellow_sees_level2_on_plain_media(self, backend, media_engine):
        """A fellow probing a genuine Level 2 object succeeds at Level 2 —
        her MAC_S3 simply never matches. (Staff fellow, so she satisfies
        one of the media object's variant predicates.)"""
        staff_fellow = backend.register_subject(
            "staff-fellow", {"position": "staff", "department": "X"},
            sensitive_attributes=("sensitive:needs-support",),
        )
        capture = run_exchange(SubjectEngine(staff_fellow), media_engine)
        assert capture.outcome.level_seen == 2

    def test_stale_group_key_fails_covert(self, backend, fellow, kiosk):
        """After a group rekey, the old key only ever yields the L2 face."""
        from repro.backend.registration import SubjectCredentials

        group_id = next(iter(fellow.group_keys))
        stale = SubjectCredentials(
            subject_id=fellow.subject_id,
            strength=fellow.strength,
            signing_key=fellow.signing_key,
            cert_chain=fellow.cert_chain,
            profile=fellow.profile,
            group_keys={group_id: b"\x13" * 32},  # wrong key
            coverup_key=fellow.coverup_key,
            admin_public=fellow.admin_public,
        )
        capture = run_exchange(SubjectEngine(stale), ObjectEngine(kiosk))
        assert capture.outcome.level_seen == 2

    def test_multi_group_rounds(self, backend):
        """§VI-C: a subject in two groups discovers both covert services
        by using her keys in turn."""
        backend.add_sensitive_policy("sensitive:g2", "sensitive:serves-g2")
        subject = backend.register_subject(
            "multi-sam", {"position": "student"},
            ("sensitive:needs-support", "sensitive:g2"),
        )
        kiosk2 = backend.register_object(
            "kiosk-g2", {"type": "kiosk"}, level=3, functions=("mag",),
            variants=[("true", ("mag",))],
            covert_functions={"sensitive:serves-g2": ("g2-flyer",)},
        )
        kiosk1 = backend.register_object(
            "kiosk-g1b", {"type": "kiosk"}, level=3, functions=("mag",),
            variants=[("true", ("mag",))],
            covert_functions={"sensitive:serves-support": ("g1-flyer",)},
        )
        from repro.protocol.discovery import discover

        result = discover(subject, [kiosk1, kiosk2])
        by_id = {s.object_id: s for s in result.services}
        assert by_id["kiosk-g1b"].level_seen == 3
        assert by_id["kiosk-g2"].level_seen == 3
        assert by_id["kiosk-g1b"].functions == ("g1-flyer",)
        assert by_id["kiosk-g2"].functions == ("g2-flyer",)

    def test_unknown_group_id_rejected(self, subject_engine):
        with pytest.raises(SessionError):
            subject_engine.start_round("no-such-group")
