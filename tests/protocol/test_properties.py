"""Property-based end-to-end invariants of the discovery protocol.

The central correctness property: for ANY subject attribute assignment
and ANY ordered list of variant predicates, the profile the subject
receives over the real wire protocol is exactly the first variant whose
predicate her attributes satisfy — and silence iff none matches. The
crypto layer must neither block authorized variants nor leak others.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.attributes.predicate import Comparison
from repro.backend import Backend
from repro.attacks.channel import run_exchange
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine

# One backend for the whole module: registration is the expensive part,
# and ids are made unique per example by a counter.
_BACKEND = Backend()
_BACKEND.add_sensitive_policy("sensitive:prop", "sensitive:serves-prop")
_COUNTER = itertools.count()

DEPARTMENTS = ["X", "Y", "Z"]
POSITIONS = ["staff", "manager", "student"]

subject_attrs = st.fixed_dictionaries(
    {
        "department": st.sampled_from(DEPARTMENTS),
        "position": st.sampled_from(POSITIONS),
    }
)

variant_predicates = st.lists(
    st.tuples(
        st.sampled_from(["department", "position"]),
        st.sampled_from(DEPARTMENTS + POSITIONS),
    ),
    min_size=1,
    max_size=4,
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(attrs=subject_attrs, preds=variant_predicates)
def test_served_variant_is_first_matching_predicate(attrs, preds):
    i = next(_COUNTER)
    subject = _BACKEND.register_subject(f"prop-subj-{i}", attrs)
    variants = [
        (Comparison(name, "==", value), (f"fn-{j}",))
        for j, (name, value) in enumerate(preds)
    ]
    obj = _BACKEND.register_object(
        f"prop-obj-{i}", {"type": "prop-device"}, level=2,
        functions=("none",), variants=variants,
    )
    capture = run_exchange(SubjectEngine(subject), ObjectEngine(obj))

    expected = None
    for j, (name, value) in enumerate(preds):
        if attrs.get(name) == value:
            expected = (f"fn-{j}",)
            break

    if expected is None:
        assert capture.outcome is None, "unauthorized subject got a variant"
    else:
        assert capture.outcome is not None, "authorized subject got silence"
        assert capture.outcome.functions == expected


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    member=st.booleans(),
    attrs=subject_attrs,
)
def test_covert_variant_iff_group_member(member, attrs):
    """Level 3 invariant: the covert variant is served exactly to group
    members, regardless of non-sensitive attributes."""
    i = next(_COUNTER)
    subject = _BACKEND.register_subject(
        f"prop3-subj-{i}", attrs,
        sensitive_attributes=("sensitive:prop",) if member else (),
    )
    obj = _BACKEND.register_object(
        f"prop3-obj-{i}", {"type": "kiosk"}, level=3,
        functions=("mag",),
        variants=[(Comparison("position", "==", attrs["position"]), ("mag",))],
        covert_functions={"sensitive:serves-prop": ("flyer",)},
    )
    capture = run_exchange(SubjectEngine(subject), ObjectEngine(obj))
    assert capture.outcome is not None
    if member:
        assert capture.outcome.level_seen == 3
        assert capture.outcome.functions == ("flyer",)
    else:
        assert capture.outcome.level_seen == 2
        assert capture.outcome.functions == ("mag",)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_tampering_any_que2_byte_never_yields_service(data):
    """Flipping any byte of QUE2 must never produce a (different) valid
    outcome: either the object goes silent, or — if the flip landed in a
    part the subject's own state doesn't depend on — the handshake still
    yields exactly the legitimate variant."""
    i = next(_COUNTER)
    subject_creds = _BACKEND.register_subject(
        f"tamper-subj-{i}", {"department": "X", "position": "staff"}
    )
    obj_creds = _BACKEND.register_object(
        f"tamper-obj-{i}", {"type": "m"}, level=2, functions=("f",),
        variants=[(Comparison("department", "==", "X"), ("legit",))],
    )
    subject = SubjectEngine(subject_creds)
    obj = ObjectEngine(obj_creds)

    from repro.protocol.messages import Que2

    def tamper(name, message):
        if name != "que2":
            return message
        raw = bytearray(message.to_bytes())
        # flip one random byte beyond the type/flag header
        index = data.draw(st.integers(min_value=2, max_value=len(raw) - 1))
        raw[index] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            return Que2.from_bytes(bytes(raw))
        except Exception:
            return message  # unparseable mutation: send original

    capture = run_exchange(subject, obj, tamper=tamper)
    if capture.outcome is not None:
        assert capture.outcome.functions == ("legit",)
