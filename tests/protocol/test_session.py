"""Session key state and constant-work MAC_S3 verification."""

from repro.crypto import kdf
from repro.crypto import meter
from repro.protocol.session import SessionKeys, Transcript

R_S, R_O = b"s" * 28, b"o" * 28


class TestTranscript:
    def test_append_order_matters(self):
        t1, t2 = Transcript(), Transcript()
        t1.append(b"a"); t1.append(b"b")
        t2.append(b"b"); t2.append(b"a")
        assert t1.snapshot() != t2.snapshot()

    def test_snapshot_is_concatenation(self):
        t = Transcript()
        t.append(b"ab"); t.append(b"cd")
        assert t.snapshot() == b"abcd"


class TestSessionKeys:
    def test_from_premaster_matches_kdf(self):
        keys = SessionKeys.from_premaster(b"pre", R_S, R_O, {"g1": b"k" * 32})
        assert keys.k2 == kdf.derive_k2(b"pre", R_S, R_O)
        assert keys.k3["g1"] == kdf.derive_k3(keys.k2, b"k" * 32, R_S, R_O)

    def test_no_groups_no_k3(self):
        keys = SessionKeys.from_premaster(b"pre", R_S, R_O)
        assert keys.k3 == {}

    def test_mac_s3_match_finds_group(self):
        keys = SessionKeys.from_premaster(
            b"pre", R_S, R_O, {"g1": b"1" * 32, "g2": b"2" * 32}
        )
        mac = kdf.subject_finished(keys.k3["g2"], b"transcript")
        assert keys.verify_subject_mac3(mac, b"transcript") == "g2"

    def test_mac_s3_no_match(self):
        keys = SessionKeys.from_premaster(b"pre", R_S, R_O, {"g1": b"1" * 32})
        other = SessionKeys.from_premaster(b"pre", R_S, R_O, {"gx": b"x" * 32})
        mac = kdf.subject_finished(other.k3["gx"], b"t")
        assert keys.verify_subject_mac3(mac, b"t") is None

    def test_constant_work_no_early_exit(self):
        """Fellow vs non-fellow verification costs the same HMAC count —
        part of the Case 9 timing defence."""
        group_keys = {f"g{i}": bytes([i]) * 32 for i in range(4)}
        keys = SessionKeys.from_premaster(b"pre", R_S, R_O, group_keys)
        mac_hit = kdf.subject_finished(keys.k3["g0"], b"t")   # matches first
        mac_miss = b"\x00" * 32                                # matches none

        with meter.metered() as hit_tally:
            assert keys.verify_subject_mac3(mac_hit, b"t") == "g0"
        with meter.metered() as miss_tally:
            assert keys.verify_subject_mac3(mac_miss, b"t") is None
        assert hit_tally.total("hmac") == miss_tally.total("hmac") == 4
