"""Session resumption: the RQUE/RRES fast path and its failure modes.

Covers the tentpole properties: symmetric-ops-only resumption, ticket
single-use/expiry/backend-invalidation with transparent fallback to the
full handshake, and v3.0 indistinguishability of the padded RRES.
"""

import pytest

from repro.backend import Backend
from repro.backend.updates import ChurnEngine
from repro.crypto import meter
from repro.protocol.discovery import run_round, run_warm_round
from repro.protocol.errors import FreshnessError
from repro.protocol.messages import Rque
from repro.protocol.object import ObjectEngine
from repro.protocol.resumption import SEALED_TICKET_LEN, ReplayLedger, TicketKeyring
from repro.protocol.subject import SubjectEngine

PUBLIC_KEY_OPS = ("ecdsa_sign", "ecdsa_verify", "ecdh_gen", "ecdh_derive")


def pk_ops(tally) -> int:
    return sum(tally.total(op) for op in PUBLIC_KEY_OPS)


def small_enterprise():
    """A fresh backend per test: churn/revocation tests mutate credentials."""
    backend = Backend()
    backend.add_sensitive_policy("sensitive:needs-support", "sensitive:serves-support")
    backend.add_policy("staff-media", "position=='staff'", "type=='multimedia'", ("play",))
    staff = backend.register_subject("staff-alice", {"position": "staff"})
    fellow = backend.register_subject(
        "student-sam", {"position": "student"},
        sensitive_attributes=("sensitive:needs-support",),
    )
    media = backend.register_object(
        "media-1", {"type": "multimedia"}, level=2, functions=("play",),
        variants=[("position=='staff'", ("play",))],
    )
    kiosk = backend.register_object(
        "kiosk-1", {"type": "magazine kiosk"}, level=3,
        functions=("dispense_magazine",),
        variants=[("true", ("dispense_magazine",))],
        covert_functions={"sensitive:serves-support": ("dispense_support_flyer",)},
    )
    return backend, staff, fellow, media, kiosk


class TestFastPath:
    def test_cold_round_issues_tickets(self, staff, media):
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media, issue_tickets=True)}
        run_round(subject, objects)
        assert subject.has_ticket(media.object_id)
        stored = subject.tickets[media.object_id]
        assert len(stored.ticket) == SEALED_TICKET_LEN
        assert stored.level == 2

    def test_resumed_rediscovery_uses_no_public_key_ops(self, staff, media):
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media, issue_tickets=True)}
        run_round(subject, objects)
        result = run_warm_round(subject, objects)
        assert result.service_ids() == {media.object_id}
        assert pk_ops(result.subject_ops) == 0
        assert pk_ops(result.object_ops[media.object_id]) == 0
        assert result.object_ops[media.object_id].total("resumption_accept") == 1

    def test_full_path_op_counts_unchanged(self, staff, media):
        """§IX-B steady state survives the resumption layer: 1 sign,
        3 verifies, 1 ECDH gen + 1 derive per side on the full path."""
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media, issue_tickets=True)}
        run_round(subject, objects)
        result = run_round(subject, objects)
        for ops in (result.subject_ops, result.object_ops[media.object_id]):
            assert ops.total("ecdsa_sign") == 1
            assert ops.total("ecdsa_verify") == 3
            assert ops.total("ecdh_gen") == 1
            assert ops.total("ecdh_derive") == 1

    def test_resumption_refreshes_the_ticket_chain(self, staff, media):
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media, issue_tickets=True)}
        run_round(subject, objects)
        first = subject.tickets[media.object_id].ticket
        run_warm_round(subject, objects)
        second = subject.tickets[media.object_id].ticket
        assert second != first  # a fresh single-use ticket every resumption
        third = run_warm_round(subject, objects)
        assert third.service_ids() == {media.object_id}

    def test_sessions_established_on_both_sides(self, staff, media):
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media, issue_tickets=True)
        objects = {media.object_id: engine}
        run_round(subject, objects)
        run_warm_round(subject, objects)
        ours = subject.established[media.object_id]
        theirs = engine.established[staff.subject_id]
        assert ours.key == theirs.key
        assert ours.level == theirs.level == 2

    def test_level3_resumption_reports_level3(self, fellow, kiosk):
        subject = SubjectEngine(fellow)
        objects = {kiosk.object_id: ObjectEngine(kiosk, issue_tickets=True)}
        run_round(subject, objects)
        result = run_warm_round(subject, objects)
        (service,) = result.services
        assert service.level_seen == 3
        assert service.via_group is not None
        assert "dispense_support_flyer" in service.functions
        assert pk_ops(result.subject_ops) == 0

    def test_level1_objects_issue_no_tickets(self, staff, thermometer):
        subject = SubjectEngine(staff)
        objects = {
            thermometer.object_id: ObjectEngine(thermometer, issue_tickets=True)
        }
        run_round(subject, objects)
        assert not subject.has_ticket(thermometer.object_id)

    def test_issuance_off_by_default(self, staff, media):
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media)}
        run_round(subject, objects)
        assert not subject.has_ticket(media.object_id)


class TestRejectionAndFallback:
    def test_expired_ticket_falls_back_to_full_handshake(self, staff, media):
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media, issue_tickets=True, ticket_lifetime=5)
        objects = {media.object_id: engine}
        run_round(subject, objects)
        engine.now = 100  # past the ticket's expiry (1 + 5)
        result = run_warm_round(subject, objects)
        # Rejected silently, then discovered via the full handshake anyway.
        assert result.service_ids() == {media.object_id}
        assert result.object_ops[media.object_id].total("resumption_reject") == 1
        assert any(isinstance(e, FreshnessError) for e in engine.errors)
        assert pk_ops(result.subject_ops) > 0  # the fallback's pk work

    def test_replayed_ticket_rejected(self, staff, media):
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media, issue_tickets=True)
        run_round(subject, {media.object_id: engine})
        rque = subject.start_resumption(media.object_id)
        assert engine.handle_rque(rque, "wire-1") is not None
        with meter.metered() as tally:
            assert engine.handle_rque(rque, "wire-2") is None  # replay
        assert tally.total("resumption_reject") == 1
        assert any(isinstance(e, FreshnessError) for e in engine.errors)

    def test_backend_push_invalidates_tickets(self):
        """A ticket issued before a backend push must not short-circuit
        the re-check: the push bumps the epoch, the object rejects the
        ticket, and the subject re-runs the full handshake."""
        backend, staff, fellow, media, kiosk = small_enterprise()
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media, issue_tickets=True)
        objects = {media.object_id: engine}
        run_round(subject, objects)
        epoch_before = media.resumption_epoch

        churn = ChurnEngine(backend)
        churn.add_policy_with_variant(
            "managers-too", "position=='manager'", "type=='multimedia'", ("play", "cast")
        )
        assert media.resumption_epoch > epoch_before

        result = run_warm_round(subject, objects)
        assert result.service_ids() == {media.object_id}  # full-handshake fallback
        assert result.object_ops[media.object_id].total("resumption_reject") == 1
        assert result.object_ops[media.object_id].total("resumption_accept") == 0

    def test_revoked_subject_cannot_resume(self):
        backend, staff, fellow, media, kiosk = small_enterprise()
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media, issue_tickets=True)
        run_round(subject, {media.object_id: engine})

        ChurnEngine(backend).remove_subject(staff.subject_id)
        rque = subject.start_resumption(media.object_id)
        assert engine.handle_rque(rque, "wire-1") is None

    def test_unknown_ticket_gets_silence(self, staff, media):
        engine = ObjectEngine(media, issue_tickets=True)
        bogus = Rque(ticket=b"\x42" * SEALED_TICKET_LEN, r_s=b"\x01" * 28, binder=b"\x02" * 32)
        with meter.metered() as tally:
            assert engine.handle_rque(bogus, "stranger") is None
        assert tally.total("resumption_reject") == 1
        assert pk_ops(tally) == 0  # rejection is cheap and silent

    def test_tampered_binder_rejected(self, staff, media):
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media, issue_tickets=True)
        run_round(subject, {media.object_id: engine})
        rque = subject.start_resumption(media.object_id)
        forged = Rque(ticket=rque.ticket, r_s=rque.r_s, binder=bytes(32))
        assert engine.handle_rque(forged, "wire-1") is None
        # the real RQUE still works: tampering didn't burn the ticket
        assert engine.handle_rque(rque, "wire-1") is not None

    def test_rotated_away_keyring_key_means_full_handshake(self, staff, media):
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media, issue_tickets=True)
        objects = {media.object_id: engine}
        run_round(subject, objects)
        engine.ticket_keyring.rotate()
        assert run_warm_round(subject, objects).service_ids() == {media.object_id}
        # two rotations outlive the previous-key grace window
        run_round(subject, objects)
        engine.ticket_keyring.rotate()
        engine.ticket_keyring.rotate()
        result = run_warm_round(subject, objects)
        assert result.service_ids() == {media.object_id}
        assert result.object_ops[media.object_id].total("resumption_reject") == 1


class TestIndistinguishability:
    """v3.0: a Level 3 object's resumed answers must not leak the level."""

    def _resumed_rres(self, creds, kiosk_creds):
        subject = SubjectEngine(creds)
        engine = ObjectEngine(kiosk_creds, issue_tickets=True)
        run_round(subject, {kiosk_creds.object_id: engine})
        rque = subject.start_resumption(kiosk_creds.object_id)
        assert rque is not None
        with meter.metered() as tally:
            rres = engine.handle_rque(rque, "wire-1")
        assert rres is not None
        return rres, tally

    def test_rres_length_constant_across_levels(self, staff, fellow, kiosk):
        """The fellow's covert RRES and a non-fellow's Level-2-face RRES
        are byte-length identical (constant padded payload)."""
        rres_l2, _ = self._resumed_rres(staff, kiosk)
        rres_l3, _ = self._resumed_rres(fellow, kiosk)
        assert len(rres_l2.ciphertext) == len(rres_l3.ciphertext)
        assert len(rres_l2.to_bytes()) == len(rres_l3.to_bytes())

    def test_rres_op_counts_equal_across_levels(self, staff, fellow, kiosk):
        """Equalized cost: the object does the identical symmetric-op
        sequence whether the ticket resumes Level 2 or Level 3."""
        _, ops_l2 = self._resumed_rres(staff, kiosk)
        _, ops_l3 = self._resumed_rres(fellow, kiosk)
        assert ops_l2.counts == ops_l3.counts
        assert pk_ops(ops_l2) == 0

    def test_res2_length_spread_still_zero_with_tickets(self, staff, fellow, kiosk):
        """The original v3.0 guarantee holds with the ticket slot added:
        RES2 ciphertexts are constant-length per object."""
        lengths = set()
        for creds in (staff, fellow):
            subject = SubjectEngine(creds)
            engine = ObjectEngine(kiosk, issue_tickets=True)
            result = run_round(subject, {kiosk.object_id: engine})
            assert result.services
            lengths.add(len(subject.established[kiosk.object_id].key))
            que1 = subject.start_round()
            res1 = engine.handle_que1(que1, creds.subject_id)
            que2 = subject.handle_res1(res1, kiosk.object_id)
            res2 = engine.handle_que2(que2, creds.subject_id)
            lengths.add(len(res2.ciphertext))
        assert len(lengths) == 2  # one key length + one ciphertext length


class TestTicketPrimitives:
    def test_replay_ledger_is_bounded(self):
        ledger = ReplayLedger(limit=4)
        ids = [bytes([i]) * 16 for i in range(6)]
        for tid in ids:
            assert ledger.redeem(tid)
        assert len(ledger) == 4  # oldest two evicted
        assert not ledger.redeem(ids[-1])

    def test_keyring_grace_window_is_one_rotation(self):
        from repro.protocol.resumption import TicketPayload, fresh_ticket_id

        keyring = TicketKeyring()
        payload = TicketPayload(
            ticket_id=fresh_ticket_id(), peer_id="s", level=2, group_id="",
            variant="default", master=b"\x07" * 32, expiry=99, epoch=0,
        )
        sealed = keyring.seal(payload)
        keyring.rotate()
        assert keyring.open(sealed) == payload  # previous key still opens
        keyring.rotate()
        assert keyring.open(sealed) is None

    def test_sealed_tickets_are_constant_length(self, staff, media, fellow, kiosk):
        lengths = set()
        for subject_creds, object_creds in ((staff, media), (fellow, kiosk)):
            subject = SubjectEngine(subject_creds)
            engine = ObjectEngine(object_creds, issue_tickets=True)
            run_round(subject, {object_creds.object_id: engine})
            lengths.add(len(subject.tickets[object_creds.object_id].ticket))
        assert lengths == {SEALED_TICKET_LEN}
