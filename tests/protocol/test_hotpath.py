"""Hot-path optimization layer at the protocol level.

Verifies the engine-facing behavior of the caches and the key pool:
warm rounds keep the paper's op counts while exposing cache-hit
markers, the Level 1 broadcast answer is serialized once, padding memos
invalidate when the backend pushes new variants, and security-sensitive
behavior (replay rejection, revocation, silence on failure) is
unchanged with every cache primed.
"""

import dataclasses

import pytest

from repro.backend import Backend
from repro.backend.updates import ChurnEngine
from repro.crypto import keypool
from repro.pki.profile import clear_verify_cache
from repro.protocol.discovery import run_round
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


class TestWarmRoundAccounting:
    def test_warm_round_exposes_cache_markers(self, staff, media):
        """Round 2 serves chain + PROF verifications from cache — visible
        via the new counters — while §IX-B totals stay at 1/3/1/1."""
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media)}
        run_round(subject, objects)
        result = run_round(subject, objects)
        s, o = result.subject_ops, result.object_ops[media.object_id]
        for ops in (s, o):
            assert ops.total("ecdsa_sign") == 1
            assert ops.total("ecdsa_verify") == 3
            assert ops.total("ecdh_gen") == 1
            # chain bytes + admin-signed PROF both served from cache
            assert ops.total("cert_verify_cached") == 1
            assert ops.total("profile_verify_cached") == 1

    def test_pool_markers_visible_in_round_ops(self, staff, media):
        pool = keypool.default_pool()
        pool.drain()
        old = pool.background_refill
        pool.background_refill = False
        try:
            pool.prime(4)
            subject = SubjectEngine(staff)
            objects = {media.object_id: ObjectEngine(media)}
            result = run_round(subject, objects)
            assert result.subject_ops.total("ecdh_pool_hit") == 1
            assert result.object_ops[media.object_id].total("ecdh_pool_hit") == 1
        finally:
            pool.background_refill = old
            pool.drain()

    def test_cold_round_has_no_cache_markers(self, staff, media):
        clear_verify_cache()
        subject = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media)}
        result = run_round(subject, objects)
        assert result.subject_ops.total("profile_verify_cached") == 0
        assert result.object_ops[media.object_id].total("cert_verify_cached") == 0


class TestLevel1ResponseCache:
    def test_res1_payload_computed_once(self, thermometer, subject_engine):
        engine = ObjectEngine(thermometer)
        que1 = subject_engine.start_round()
        first = engine.handle_que1(que1, "s")
        que1b = subject_engine.start_round()
        second = engine.handle_que1(que1b, "s")
        assert first is second  # the cached message object is reused

    def test_res1_cache_invalidates_on_profile_swap(self, thermometer, subject_engine):
        engine = ObjectEngine(thermometer)
        first = engine.handle_que1(subject_engine.start_round(), "s")
        # a backend push replaces the public profile object
        engine.creds = dataclasses.replace(thermometer)
        engine.creds.public_profile = dataclasses.replace(
            thermometer.public_profile, signature=thermometer.public_profile.signature
        )
        second = engine.handle_que1(subject_engine.start_round(), "s")
        assert first is not second
        assert first.profile_bytes == second.profile_bytes


class TestPaddedLengthMemo:
    def test_memo_stable_across_calls(self, media):
        engine = ObjectEngine(media)
        assert engine.padded_payload_length() == engine.padded_payload_length()

    def test_memo_invalidates_when_variants_change(self):
        backend = Backend()
        creds = backend.register_object(
            "m", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("position=='staff'", ("play",))],
        )
        engine = ObjectEngine(creds)
        before = engine.padded_payload_length()
        ChurnEngine(backend).add_policy_with_variant(
            "interns-too", "position=='intern'", "type=='multimedia'",
            ("play", "cast", "transcode", "a-much-longer-function-name"),
        )
        after = engine.padded_payload_length()
        assert after > before  # the new longest variant resized the padding


class TestSecurityUnchangedWarm:
    def test_replay_rejected_with_all_caches_primed(self, staff, media):
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media)
        run_round(subject, {media.object_id: engine})  # warm everything
        que1 = subject.start_round()
        assert engine.handle_que1(que1, staff.subject_id) is not None
        assert engine.handle_que1(que1, staff.subject_id) is None  # replayed nonce

    def test_revoked_subject_rejected_despite_warm_leaf_cache(self, staff, media):
        """Revocation is checked after chain verification, so a cached
        (still cryptographically valid) chain must not bypass it."""
        subject = SubjectEngine(staff)
        # private creds copy: the revocation push must not leak into the
        # session-scoped fixture
        creds = dataclasses.replace(media, revoked_subjects=set())
        engine = ObjectEngine(creds)
        result = run_round(subject, {media.object_id: engine})
        assert result.services  # first contact succeeded; caches are warm
        engine.creds.revoked_subjects.add(staff.subject_id)
        subject2 = SubjectEngine(staff)
        result2 = run_round(subject2, {media.object_id: engine})
        assert not result2.services
        assert any("revoked" in str(e) for e in engine.errors)

    def test_que2_replay_rejected_warm(self, staff, media):
        subject = SubjectEngine(staff)
        engine = ObjectEngine(media)
        run_round(subject, {media.object_id: engine})
        que1 = subject.start_round()
        res1 = engine.handle_que1(que1, staff.subject_id)
        que2 = subject.handle_res1(res1, media.object_id)
        assert engine.handle_que2(que2, staff.subject_id) is not None
        assert engine.handle_que2(que2, staff.subject_id) is None  # one QUE2/session


class TestDiscoveryEquivalence:
    @pytest.mark.parametrize("primed", [False, True])
    def test_same_services_cold_and_warm(self, staff, media, kiosk, thermometer, primed):
        pool = keypool.default_pool()
        pool.drain()
        if primed:
            pool.prime(8)
        else:
            clear_verify_cache()
        subject = SubjectEngine(staff)
        objects = {
            c.object_id: ObjectEngine(c) for c in (media, kiosk, thermometer)
        }
        result = run_round(subject, objects)
        assert {s.object_id for s in result.services} == {
            media.object_id, kiosk.object_id, thermometer.object_id
        }
        pool.drain()
