"""Batched handlers are bit-equivalent accelerators (satellite of the
throughput tentpole).

The property: for ANY permutation of a mixed batch,
``handle_que2_batch`` emits byte-identical RES2s and an identical §IX-B
meter snapshot to processing the same permutation one QUE2 at a time —
and the meter totals are permutation-independent.  The batch mixes
Level 3 fellows, non-fellow staff served a Level 2 cover-up, and a
plain Level 2 population, because those take different branches through
the responder and the cover-up branch is exactly where an accelerator
could reopen the §VII Case 7/8 side channels.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import Backend
from repro.crypto import aead, keypool
from repro.crypto.meter import metered
from repro.experiments.throughput import _clone_object_engine
from repro.pki import profile as profile_mod
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine

_BACKEND = Backend()
_BACKEND.add_sensitive_policy("sensitive:batch", "sensitive:serves-batch")
_COUNTER = itertools.count()


def _make_object(level: int):
    i = next(_COUNTER)
    kwargs = {}
    if level == 3:
        kwargs["covert_functions"] = {"sensitive:serves-batch": ("covert-fn",)}
    return _BACKEND.register_object(
        f"batch-obj-{i}", {"type": "batch-device"}, level=level,
        functions=("base-fn",),
        variants=[("position=='staff'", ("base-fn", "staff-fn"))],
        **kwargs,
    )


def _make_subjects():
    """Fellow / non-fellow staff / non-staff — one of each branch."""
    creds = []
    for kind in ("fellow", "staff", "visitor"):
        i = next(_COUNTER)
        attrs = {"position": "staff" if kind != "visitor" else "guest"}
        sensitive = ("sensitive:batch",) if kind == "fellow" else ()
        creds.append(
            _BACKEND.register_subject(f"batch-subj-{kind}-{i}", attrs, sensitive)
        )
    return creds


def _pin_aead_iv(monkeypatch):
    """Deterministic per-call IVs; reset returns the counter to zero."""
    state = {"n": 0}

    def pinned(length: int) -> bytes:
        state["n"] += 1
        return (state["n"].to_bytes(4, "big") * ((length // 4) + 1))[:length]

    monkeypatch.setattr(aead, "random_bytes", pinned)
    return lambda: state.update(n=0)


@pytest.fixture(scope="module")
def object_batch():
    """One Level 3 object, six mixed subjects, QUE2s ready to answer."""
    obj = _make_object(3)
    reference = ObjectEngine(obj)
    items = []
    subjects = _make_subjects() + _make_subjects()
    for j, screds in enumerate(subjects):
        engine = SubjectEngine(screds)
        que1 = engine.start_round()
        res1 = reference.handle_que1(que1, f"peer-{j}")
        que2 = engine.handle_res1(res1, obj.object_id)
        assert que2 is not None, engine.errors
        items.append((que2, f"peer-{j}"))
    return obj, reference, items


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(order=st.permutations(list(range(6))))
def test_batched_que2_equals_sequential_any_order(
    object_batch, monkeypatch, order
):
    obj, reference, items = object_batch
    perm = [items[i] for i in order]
    reset_iv = _pin_aead_iv(monkeypatch)

    def run(engine, batched: bool):
        reset_iv()
        profile_mod.clear_verify_cache()
        with metered() as tally:
            if batched:
                res2s = engine.handle_que2_batch(perm)
            else:
                res2s = [engine.handle_que2(q, p) for q, p in perm]
        # Visitors match no variant -> silence (None); equivalence must
        # cover the rejection branch too, byte-for-byte and None-for-None.
        return [r.to_bytes() if r else None for r in res2s], dict(tally.counts)

    seq_bytes, seq_counts = run(_clone_object_engine(obj, reference), False)
    bat_bytes, bat_counts = run(_clone_object_engine(obj, reference), True)

    assert bat_bytes == seq_bytes  # byte-identical wire messages
    assert bat_counts == seq_counts  # identical §IX-B accounting

    # Meter totals are permutation-independent: compare against the
    # identity order too (caches make *where* ops land vary, not totals).
    id_bytes, id_counts = run(_clone_object_engine(obj, reference), True)
    assert id_counts == bat_counts
    # RES2 bytes follow the items, not the order they were answered in.
    by_peer_perm = dict(zip([p for _, p in perm], bat_bytes))
    by_peer_id = dict(zip([p for _, p in perm], id_bytes))
    assert by_peer_perm == by_peer_id


def test_batched_res2_all_levels_decrypt_correctly(object_batch):
    """End to end: every subject in the mixed batch gets the service the
    sequential path would give — fellows Level 3, staff Level 2."""
    obj = _make_object(3)
    engine = ObjectEngine(obj)
    subjects = _make_subjects()
    subject_engines, items = [], []
    for j, screds in enumerate(subjects):
        sengine = SubjectEngine(screds)
        que1 = sengine.start_round()
        res1 = engine.handle_que1(que1, f"e2e-{j}")
        que2 = sengine.handle_res1(res1, obj.object_id)
        subject_engines.append(sengine)
        items.append((que2, f"e2e-{j}"))
    res2s = engine.handle_que2_batch(items)
    assert res2s[2] is None  # the visitor matches no variant: silence
    services = [
        sengine.handle_res2(res2, obj.object_id)
        for sengine, res2 in zip(subject_engines[:2], res2s[:2])
    ]
    assert [s.level_seen for s in services] == [3, 2]
    assert "covert-fn" in services[0].functions
    assert "staff-fn" in services[1].functions


def test_subject_batch_equals_sequential_meters():
    """Subject-side mirror: identical op accounting, all QUE2s valid.

    (Byte-identity is impossible — ECDSA signing is randomized — so the
    property is meter equality plus end-to-end validity.  The key pool
    is disabled so its refill thread cannot skew hit/miss markers.)
    """
    fellow = _BACKEND.register_subject(
        f"batch-subj-lone-{next(_COUNTER)}", {"position": "staff"},
        ("sensitive:batch",),
    )
    objects = [_make_object(2), _make_object(3), _make_object(3)]
    object_engines = [ObjectEngine(o) for o in objects]

    opener = SubjectEngine(fellow)
    que1 = opener.start_round()
    items = [
        (oe.handle_que1(que1, fellow.subject_id), o.object_id)
        for oe, o in zip(object_engines, objects)
    ]

    def run(batched: bool):
        # A same-round replica of the opener: start_round picks the same
        # group key (it's deterministic), then the nonce is aligned.
        engine = SubjectEngine(fellow)
        engine.start_round()
        engine._r_s = opener._r_s
        engine._que1_bytes = opener._que1_bytes
        profile_mod.clear_verify_cache()
        with metered() as tally:
            if batched:
                que2s = engine.handle_res1_batch(items)
            else:
                que2s = [engine.handle_res1(r, p) for r, p in items]
        assert all(q is not None for q in que2s), engine.errors
        return engine, que2s, dict(tally.counts)

    keypool.configure(enabled=False)
    try:
        _, _, seq_counts = run(batched=False)
        engine, que2s, bat_counts = run(batched=True)
    finally:
        keypool.configure(enabled=True)
    assert bat_counts == seq_counts
    assert engine._prepared_ecdh == {}  # no residue past the batch

    # The pooled signatures/derives close real handshakes end to end.
    for que2, obj, oe in zip(que2s, objects, object_engines):
        res2 = oe.handle_que2(que2, fellow.subject_id)
        assert res2 is not None, oe.errors
        service = engine.handle_res2(res2, obj.object_id)
        assert service is not None
    levels = sorted(s.level_seen for s in engine.discovered)
    assert levels == [2, 3, 3]
