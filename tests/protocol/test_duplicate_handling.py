"""Duplicate and replayed frames on the recovery path.

The fault layer (repro.net.faults) can duplicate any frame and the retry
layer (repro.net.run.RetryPolicy) deliberately re-sends QUE2/RQUE, so
the engines must treat "the same bytes again" as recovery — idempotent,
constant-shape, no new crypto — while anything that *differs* keeps the
strict replays-are-silence contract.
"""

import dataclasses

import pytest

from repro.protocol.discovery import run_round
from repro.protocol.errors import FreshnessError, SessionError
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


def four_way(subject: SubjectEngine, obj: ObjectEngine):
    """One full in-memory handshake; returns (que2, res2)."""
    peer_s = subject.creds.subject_id
    peer_o = obj.creds.object_id
    que1 = subject.start_round(None)
    res1 = obj.handle_que1(que1, peer_s)
    que2 = subject.handle_res1(res1, peer_o)
    res2 = obj.handle_que2(que2, peer_s)
    assert res2 is not None
    assert subject.handle_res2(res2, peer_o) is not None
    return que2, res2


class TestDuplicateQue2:
    def test_exact_duplicate_gets_byte_identical_res2(self, staff, media):
        """A retransmitted QUE2 recovers the lost RES2: same bytes out."""
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, resend_cached_res2=True)
        que2, res2 = four_way(subject, obj)
        resent = obj.handle_que2(que2, staff.subject_id)
        assert resent is not None
        assert resent.to_bytes() == res2.to_bytes()

    def test_duplicate_is_idempotent_across_repeats(self, staff, media):
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, resend_cached_res2=True)
        que2, res2 = four_way(subject, obj)
        for _ in range(3):
            assert obj.handle_que2(que2, staff.subject_id).to_bytes() == (
                res2.to_bytes()
            )

    def test_differing_que2_still_silence(self, staff, media):
        """One flipped byte is not a retransmission — no oracle."""
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, resend_cached_res2=True)
        que2, _ = four_way(subject, obj)
        tweaked = dataclasses.replace(
            que2, profile_bytes=que2.profile_bytes + b"x"
        )
        assert obj.handle_que2(tweaked, staff.subject_id) is None
        assert any(isinstance(e, SessionError) for e in obj.errors)

    def test_resend_disabled_by_default(self, staff, media):
        """The in-memory path keeps the strict contract: replayed QUE2
        gets silence unless the transport opted into resends."""
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media)
        que2, _ = four_way(subject, obj)
        assert obj.handle_que2(que2, staff.subject_id) is None

    def test_duplicate_from_other_peer_not_answered(self, staff, media):
        """The cache is keyed by peer: a copy arriving under a different
        network identity is a splice, not a retransmission."""
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, resend_cached_res2=True)
        que2, _ = four_way(subject, obj)
        assert obj.handle_que2(que2, "someone-else") is None


class TestDuplicateRque:
    def _ticketed(self, staff, media):
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, issue_tickets=True, decoy_on_replay=True)
        run_round(subject, {media.object_id: obj})
        return subject, obj

    def test_replayed_rque_rejected_exactly_once_with_decoy(self, staff, media):
        """A network-duplicated RQUE redeems once; every further copy is
        rejected by the ReplayLedger and answered with a decoy RRES."""
        subject, obj = self._ticketed(staff, media)
        rque = subject.start_resumption(media.object_id)
        first = obj.handle_rque(rque, "wire-1")
        assert first is not None
        replays = [obj.handle_rque(rque, "wire-1") for _ in range(3)]
        assert all(r is not None for r in replays)  # decoys, not silence
        freshness = [e for e in obj.errors if isinstance(e, FreshnessError)]
        assert len(freshness) == 3  # ledger rejected every copy

    def test_decoy_is_constant_length(self, staff, media):
        subject, obj = self._ticketed(staff, media)
        rque = subject.start_resumption(media.object_id)
        real = obj.handle_rque(rque, "wire-1")
        decoy = obj.handle_rque(rque, "wire-1")
        assert len(decoy.to_bytes()) == len(real.to_bytes())
        assert len(decoy.ciphertext) == len(real.ciphertext)

    def test_decoy_never_authenticates(self, staff, media):
        subject, obj = self._ticketed(staff, media)
        rque = subject.start_resumption(media.object_id)
        obj.handle_rque(rque, media.object_id)
        decoy = obj.handle_rque(rque, media.object_id)
        assert subject.handle_rres(decoy, media.object_id) is None
        assert subject.errors  # failed MAC/decrypt recorded, no crash

    def test_decoy_off_by_default(self, staff, media):
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, issue_tickets=True)
        run_round(subject, {media.object_id: obj})
        rque = subject.start_resumption(media.object_id)
        assert obj.handle_rque(rque, "wire-1") is not None
        assert obj.handle_rque(rque, "wire-1") is None  # paper-faithful


class TestPendingTableTtl:
    def test_half_open_handshakes_evicted(self, staff, media):
        obj = ObjectEngine(media, pending_ttl_s=5.0)
        subject = SubjectEngine(staff)
        obj.tick(0.0)
        que1 = subject.start_round(None)
        res1 = obj.handle_que1(que1, staff.subject_id)
        que2 = subject.handle_res1(res1, media.object_id)
        obj.tick(6.0)  # past the TTL before QUE2 lands
        assert obj.handle_que2(que2, staff.subject_id) is None
        assert any(isinstance(e, SessionError) for e in obj.errors)

    def test_fresh_handshake_survives_tick(self, staff, media):
        obj = ObjectEngine(media, pending_ttl_s=5.0)
        subject = SubjectEngine(staff)
        obj.tick(0.0)
        que1 = subject.start_round(None)
        res1 = obj.handle_que1(que1, staff.subject_id)
        que2 = subject.handle_res1(res1, media.object_id)
        obj.tick(4.0)  # within the TTL
        assert obj.handle_que2(que2, staff.subject_id) is not None


class TestColdRestart:
    def test_reset_cold_drops_inflight_state(self, staff, media):
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, resend_cached_res2=True)
        four_way(subject, obj)
        assert obj.established
        obj.reset_cold()
        assert not obj.established
        # a new handshake works from scratch after the restart
        subject2 = SubjectEngine(staff)
        four_way(subject2, obj)

    def test_replay_ledger_survives_crash(self, staff, media):
        """A power-cycle must not launder ticket replays (flash state)."""
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media, issue_tickets=True)
        run_round(subject, {media.object_id: obj})
        rque = subject.start_resumption(media.object_id)
        assert obj.handle_rque(rque, "wire-1") is not None
        obj.reset_cold()
        assert obj.handle_rque(rque, "wire-1") is None  # still burned

    def test_subject_reset_cold_keeps_discoveries(self, staff, media):
        subject = SubjectEngine(staff)
        obj = ObjectEngine(media)
        four_way(subject, obj)
        assert subject.discovered
        subject.reset_cold()
        assert subject.discovered  # the service registry is durable
        assert not subject.established


class TestWireErrors:
    def test_record_wire_error_never_raises(self, staff, media):
        obj = ObjectEngine(media)
        subject = SubjectEngine(staff)
        obj.record_wire_error(ValueError("mangled frame"))
        subject.record_wire_error(ValueError("mangled frame"))
        assert obj.errors and subject.errors
