"""Transport framing: tag routing, datagram budget, stream records."""

import asyncio
import struct

import pytest

from repro.backend.updatewire import TYPE_BUNDLE, TYPE_LKH_REKEY, TYPE_REKEY, TYPE_REVOKE
from repro.protocol.messages import (
    TYPE_QUE1,
    TYPE_QUE2,
    TYPE_RES1,
    TYPE_RES1_L1,
    TYPE_RES2,
    TYPE_RQUE,
    TYPE_RRES,
)
from repro.service.framing import (
    MAX_STREAM_FRAME,
    TYPE_UPDATE_ACK,
    FrameKind,
    FramingError,
    OversizedFrame,
    ack_frame,
    check_datagram,
    classify_frame,
    parse_ack,
    read_stream_frame,
    write_stream_frame,
)


class TestClassify:
    def test_protocol_tags(self):
        for tag in (TYPE_QUE1, TYPE_RES1_L1, TYPE_RES1, TYPE_QUE2,
                    TYPE_RES2, TYPE_RQUE, TYPE_RRES):
            assert classify_frame(bytes([tag]) + b"x") is FrameKind.PROTOCOL

    def test_update_tags(self):
        for tag in (TYPE_REVOKE, TYPE_REKEY, TYPE_BUNDLE, TYPE_LKH_REKEY):
            assert classify_frame(bytes([tag]) + b"x") is FrameKind.UPDATE

    def test_ack_tag(self):
        assert classify_frame(ack_frame(7)) is FrameKind.UPDATE_ACK

    def test_unknown_and_empty(self):
        assert classify_frame(b"") is FrameKind.UNKNOWN
        assert classify_frame(b"\xff\x00") is FrameKind.UNKNOWN


class TestDatagramBudget:
    def test_passthrough(self):
        assert check_datagram(b"abc", 3) == b"abc"

    def test_oversized_carries_sizes(self):
        with pytest.raises(OversizedFrame) as excinfo:
            check_datagram(b"abcd", 3)
        assert excinfo.value.size == 4
        assert excinfo.value.budget == 3


class TestAck:
    def test_roundtrip(self):
        assert parse_ack(ack_frame(0)) == 0
        assert parse_ack(ack_frame(2**63)) == 2**63

    def test_malformed_rejected(self):
        with pytest.raises(FramingError):
            parse_ack(b"")
        with pytest.raises(FramingError):
            parse_ack(ack_frame(1)[:-1])  # truncated
        wrong_tag = bytes([TYPE_QUE1]) + ack_frame(1)[1:]
        with pytest.raises(FramingError):
            parse_ack(wrong_tag)


class _SinkWriter:
    """Just enough of a StreamWriter to collect written bytes."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data += chunk


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestStreamFraming:
    def test_roundtrip_two_frames_then_clean_eof(self):
        async def scenario():
            writer = _SinkWriter()
            write_stream_frame(writer, b"first")
            write_stream_frame(writer, b"second record")
            reader = _reader_with(bytes(writer.data))
            assert await read_stream_frame(reader) == b"first"
            assert await read_stream_frame(reader) == b"second record"
            assert await read_stream_frame(reader) is None

        asyncio.run(scenario())

    def test_truncated_header_raises(self):
        async def scenario():
            reader = _reader_with(b"\x00\x00")  # 2 of 4 length bytes
            with pytest.raises(FramingError, match="header"):
                await read_stream_frame(reader)

        asyncio.run(scenario())

    def test_truncated_body_raises(self):
        async def scenario():
            reader = _reader_with(struct.pack(">I", 10) + b"short")
            with pytest.raises(FramingError, match="body"):
                await read_stream_frame(reader)

        asyncio.run(scenario())

    def test_hostile_length_prefix_bounded(self):
        async def scenario():
            reader = _reader_with(struct.pack(">I", MAX_STREAM_FRAME + 1))
            with pytest.raises(FramingError, match="exceeds cap"):
                await read_stream_frame(reader)

        asyncio.run(scenario())

    def test_write_enforces_cap(self):
        writer = _SinkWriter()
        with pytest.raises(FramingError, match="exceeds cap"):
            write_stream_frame(writer, b"\x00" * (MAX_STREAM_FRAME + 1))
        assert not writer.data  # nothing partial hit the wire
