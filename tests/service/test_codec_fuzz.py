"""Hostile-bytes fuzzing of the wire codec (QUE2 / RRES focus).

Two invariants under mutation:

* decoding failures are *typed* (:class:`MessageFormatError` or
  silence), never crashes — and the error text never echoes payload
  bytes back to whoever sent them;
* every failure lands in the error ledger (``record_wire_error`` /
  ``stats.wire_errors``), because §IX's completion accounting depends
  on corrupted frames being counted, not vanishing.
"""

import pytest

from repro.protocol.errors import MessageFormatError
from repro.protocol.messages import parse_message
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version
from repro.service.client import SubjectServiceClient
from repro.service.daemon import ObjectServiceDaemon


@pytest.fixture(scope="module")
def wire_frames(level2_fleet):
    """Valid (que2_raw, res2_raw, rque_raw, rres_raw) off one handshake."""
    subject, objects, _ = level2_fleet
    daemon = ObjectServiceDaemon(objects[0], clock=lambda: 0.0)
    engine = SubjectEngine(subject, Version.V3_0)
    res1_raw = daemon.dispatch(engine.start_round().to_bytes(), "fuzz-peer")
    que2 = engine.handle_res1(parse_message(res1_raw), "o")
    que2_raw = que2.to_bytes()
    res2_raw = daemon.dispatch(que2_raw, "fuzz-peer")
    service = engine.handle_res2(parse_message(res2_raw), "o")
    rque = engine.start_resumption(service.object_id)
    rque_raw = rque.to_bytes()
    rres_raw = daemon.dispatch(rque_raw, "fuzz-peer")
    assert rres_raw is not None
    return que2_raw, res2_raw, rque_raw, rres_raw


def _assert_no_payload_leak(raw: bytes, text: str) -> None:
    """No 8-byte window of the frame appears (hex or repr) in *text*."""
    lowered = text.lower()
    for start in range(0, max(1, len(raw) - 8), 8):
        window = raw[start:start + 8]
        assert window.hex() not in lowered
        assert repr(window)[2:-1] not in text


class TestTruncation:
    def test_truncated_que2_and_rres_raise_typed_errors(self, wire_frames):
        que2_raw, _, _, rres_raw = wire_frames
        for raw in (que2_raw, rres_raw):
            for cut in (1, 2, 5, len(raw) // 4, len(raw) // 2, len(raw) - 1):
                try:
                    parse_message(raw[:cut])
                except MessageFormatError as exc:
                    _assert_no_payload_leak(raw, str(exc))
                except Exception as exc:  # pragma: no cover - the bug
                    pytest.fail(
                        f"untyped {type(exc).__name__} at cut={cut}: {exc}"
                    )
                # A parse that *succeeds* on a truncation is acceptable
                # only if later authentication rejects it; the dispatch
                # fuzz below covers that end of the funnel.

    def test_empty_and_tag_only(self):
        for raw in (b"", b"\x04", b"\x07"):
            with pytest.raises(MessageFormatError):
                parse_message(raw)


class TestBitFlips:
    def test_flipped_frames_never_crash_daemon(self, level2_fleet, wire_frames):
        _, objects, _ = level2_fleet
        que2_raw, _, rque_raw, _ = wire_frames
        daemon = ObjectServiceDaemon(objects[0], clock=lambda: 0.0)
        for raw in (que2_raw, rque_raw):
            for pos in range(0, len(raw), max(1, len(raw) // 24)):
                for bit in (0x01, 0x80):
                    flipped = (
                        raw[:pos] + bytes([raw[pos] ^ bit]) + raw[pos + 1:]
                    )
                    # Silence, whatever the mutation hit — tag, length
                    # field, ciphertext, MAC.  Never an exception, never
                    # a reply that could serve as a parsing oracle.
                    assert daemon.dispatch(flipped, f"flip-{pos}-{bit}") is None
        # The funnel counted every failure somewhere: parse failures in
        # wire_errors, authenticated-decode failures in the engine ledger.
        assert daemon.stats["wire_errors"] + len(daemon.engine.errors) > 0

    def test_client_counts_corrupt_replies(self, level2_fleet, wire_frames):
        subject, _, _ = level2_fleet
        _, res2_raw, _, rres_raw = wire_frames
        client = SubjectServiceClient(subject)
        errors_before = len(client.engine.errors)
        for raw in (res2_raw, rres_raw):
            truncated = raw[:7]
            assert client._parse(truncated) is None
        assert client.stats.wire_errors == 2
        assert len(client.engine.errors) == errors_before + 2
        for err in client.engine.errors[errors_before:]:
            assert isinstance(err, MessageFormatError)
            _assert_no_payload_leak(res2_raw, str(err))
            _assert_no_payload_leak(rres_raw, str(err))
