"""The live update plane: stop-and-wait pushes, LKH streams, outages.

All fleets here are private to the module — applying updates mutates
the credentials (that is what updates are for), so nothing session-
scoped may be used.
"""

import asyncio

from repro.backend.updatewire import UpdatePublisher, UpdateReceiver
from repro.experiments.common import make_level_fleet
from repro.net.faults import (
    Fault,
    FaultKind,
    FaultLayer,
    FaultSchedule,
    burst_loss_schedule,
)
from repro.net.run import RetryPolicy
from repro.service.chaos import ChaosProxy
from repro.service.daemon import ObjectServiceDaemon
from repro.service.update_stream import UpdateStreamPusher

#: Loopback-tuned: quick retries, but patient enough for lossy runs.
PUSH_RETRY = RetryPolicy(max_retries=8, base_timeout_s=0.05, backoff=1.5,
                         give_up_s=5.0)


def _receiver_for(creds, backend, **kwargs):
    return UpdateReceiver(
        creds.object_id, backend.admin_public, object_creds=creds, **kwargs
    )


class TestInOrderStream:
    def test_stream_applies_in_publish_order(self):
        subject, objects, backend = make_level_fleet(1, level=2)
        receiver = _receiver_for(objects[0], backend)
        publisher = UpdatePublisher(backend.root_key)
        messages = [
            publisher.revoke_subject(objects[0].object_id, f"intruder-{i}")
            for i in range(3)
        ]

        async def scenario():
            async with ObjectServiceDaemon(
                objects[0], update_receiver=receiver
            ) as daemon:
                async with UpdateStreamPusher(retry=PUSH_RETRY) as pusher:
                    delivered = await pusher.push_all(daemon.address, messages)
                return delivered, dict(daemon.stats), dict(pusher.stats)

        delivered, stats, push_stats = asyncio.run(scenario())
        assert delivered == 3
        assert stats["updates_applied"] == 3
        assert push_stats["pushes_acked"] == 3
        assert receiver.last_sequence == messages[-1].sequence
        assert {f"intruder-{i}" for i in range(3)} <= objects[0].revoked_subjects

    def test_lost_ack_duplicate_is_reacked_not_reapplied(self):
        subject, objects, backend = make_level_fleet(1, level=2)
        receiver = _receiver_for(objects[0], backend)
        message = UpdatePublisher(backend.root_key).revoke_subject(
            objects[0].object_id, "intruder"
        )

        async def scenario():
            async with ObjectServiceDaemon(
                objects[0], update_receiver=receiver
            ) as daemon:
                async with UpdateStreamPusher(retry=PUSH_RETRY) as pusher:
                    # Push the same sequence twice — the wire-level shape
                    # of a lost ACK followed by the pusher's retry.
                    first = await pusher.push(daemon.address, message)
                    second = await pusher.push(daemon.address, message)
                return first, second, dict(daemon.stats)

        first, second, stats = asyncio.run(scenario())
        assert first and second
        assert stats["updates_applied"] == 1
        assert stats["updates_reacked"] == 1
        assert len(receiver.errors) == 0


class TestLkhStreamUnderChaos:
    def test_lossy_rekey_stream_applies_exactly_once(self):
        """Two LKH removals through a lossy, duplicating proxy.

        The §VIII wire path, chaos-tested: MemberState replay must land
        exactly once per broadcast despite lost pushes, lost ACKs and
        fault-duplicated frames.
        """
        subject, objects, backend = make_level_fleet(3, level=3)
        group = backend.groups.groups_of_subject(subject.subject_id)[0]
        gid = group.group_id
        # Provision the daemon's device state BEFORE any removal — the
        # whole point is advancing it via the published stream.
        state = backend.groups.member_state(gid, objects[0].object_id)
        receiver = _receiver_for(
            objects[0], backend, lkh_members={gid: state}
        )
        # ONE shared publisher across the stream: sequences must be
        # strictly increasing end to end or the receiver calls staleness.
        publisher = UpdatePublisher(backend.root_key)
        messages = []
        for evicted in (objects[1], objects[2]):
            report = backend.groups.remove_member(gid, evicted.object_id)
            messages.append(publisher.lkh_rekey(gid, list(report.updates)))
        schedule = FaultSchedule(
            burst_loss_schedule(0.2, seed=5).entries
            + (Fault(FaultKind.DUPLICATION, severity=0.5,
                     extra_delay_s=0.005),),
            seed=5,
        )

        async def scenario():
            async with ObjectServiceDaemon(
                objects[0], update_receiver=receiver
            ) as daemon:
                proxy = ChaosProxy(
                    daemon.address, FaultLayer(schedule, seed=5),
                    objects[0].object_id,
                )
                await proxy.start()
                try:
                    async with UpdateStreamPusher(retry=PUSH_RETRY) as pusher:
                        delivered = await pusher.push_all(
                            proxy.address, messages
                        )
                    await asyncio.sleep(0.1)  # drain trailing duplicates
                finally:
                    await proxy.close()
                return delivered, dict(daemon.stats)

        delivered, stats = asyncio.run(scenario())
        assert delivered == 2
        assert stats["updates_applied"] == 2
        assert receiver.last_sequence == messages[-1].sequence
        assert [str(e) for e in receiver.errors] == []
        # The device converged on the post-eviction group key.
        final_group = backend.groups.groups_of_subject(subject.subject_id)[0]
        assert objects[0].level3_variants[gid][0] == final_group.key


class TestBackendOutage:
    def test_push_defers_through_outage_window(self):
        subject, objects, backend = make_level_fleet(1, level=2)
        receiver = _receiver_for(objects[0], backend)
        message = UpdatePublisher(backend.root_key).revoke_subject(
            objects[0].object_id, "intruder"
        )
        schedule = FaultSchedule(
            (Fault(FaultKind.BACKEND_OUTAGE, start_s=0.0, stop_s=0.3),),
        )

        async def scenario():
            loop = asyncio.get_running_loop()
            epoch = loop.time()
            async with ObjectServiceDaemon(
                objects[0], update_receiver=receiver
            ) as daemon:
                async with UpdateStreamPusher(
                    retry=PUSH_RETRY, schedule=schedule,
                    now_fn=lambda: loop.time() - epoch,
                ) as pusher:
                    acked = await pusher.push(daemon.address, message)
                    elapsed = loop.time() - epoch
                return acked, elapsed, dict(pusher.stats), dict(daemon.stats)

        acked, elapsed, push_stats, stats = asyncio.run(scenario())
        assert acked
        # Nothing left the pusher while the plane was down.
        assert elapsed >= 0.25
        assert push_stats["pushes_deferred"] > 0
        assert stats["updates_applied"] == 1


class TestCrashAbort:
    def test_push_all_aborts_on_dark_daemon_then_recovers(self):
        subject, objects, backend = make_level_fleet(1, level=2)
        receiver = _receiver_for(objects[0], backend)
        publisher = UpdatePublisher(backend.root_key)
        messages = [
            publisher.revoke_subject(objects[0].object_id, f"intruder-{i}")
            for i in range(2)
        ]
        impatient = RetryPolicy(max_retries=1, base_timeout_s=0.05,
                                backoff=1.5, give_up_s=0.4)

        async def scenario():
            async with ObjectServiceDaemon(
                objects[0], update_receiver=receiver
            ) as daemon:
                daemon.crash()
                async with UpdateStreamPusher(retry=impatient) as pusher:
                    # Aborts at the FIRST failure: delivering past a gap
                    # would poison the stale-sequence re-ACK invariant.
                    dark = await pusher.push_all(daemon.address, messages)
                    daemon.restart()
                    recovered = await pusher.push_all(daemon.address, messages)
                    return dark, recovered, dict(pusher.stats), dict(daemon.stats)

        dark, recovered, push_stats, stats = asyncio.run(scenario())
        assert dark == 0
        assert push_stats["pushes_given_up"] == 1
        assert recovered == 2
        assert stats["updates_applied"] == 2
