"""The §IX robustness gates, live: chaos proxies on loopback sockets.

These are the socket-path analogues of the simulator gates in
``repro.experiments.fault_recovery`` — same :class:`FaultSchedule`
vocabulary, same RNG seeding discipline, real frames.  Seeds are pinned
so CI failures replay exactly.
"""

import asyncio

from repro.attacks.channel import CapturedExchange
from repro.attacks.distinguisher import res2_length_spread, subject_advantage
from repro.net.faults import Fault, FaultKind, FaultSchedule, burst_loss_schedule
from repro.protocol.errors import MessageFormatError
from repro.protocol.messages import Que2, Res2, Rres, parse_message
from repro.service.chaos import ServiceChaosHarness
from repro.service.client import SubjectServiceClient

from .conftest import FAST_PHASE1_S, FAST_RETRY

GATE_LOSS = 0.20
GATE_SEEDS = (0, 1, 2)
GATE_ROUNDS = 12


def make_client(creds, seed=0, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("phase1_timeout_s", FAST_PHASE1_S)
    return SubjectServiceClient(creds, seed=seed, **kwargs)


def _parse_taps(taps):
    """An eavesdropper's transcript: every *delivered* frame, parsed."""
    messages = []
    for direction, node, raw in taps:
        try:
            messages.append((direction, node, parse_message(raw)))
        except MessageFormatError:
            continue
    return messages


async def _run_fleet(objects, schedule, seed, *, subject, rounds=GATE_ROUNDS):
    """One discovery run through chaos proxies; returns (found, client, harness)."""
    async with ServiceChaosHarness(schedule, seed=seed) as harness:
        for creds in objects:
            await harness.add_object(creds)
        await harness.start()
        async with make_client(subject, seed=seed) as client:
            found = await client.discover(
                harness.endpoints(), rounds=rounds, allow_resume=False
            )
        # Let straggler deliveries (fault-duplicated copies trail their
        # originals by call_later) flush into the tap before teardown.
        await asyncio.sleep(0.1)
        return found, client, harness


class TestBurstLossGate:
    def test_completion_at_20_percent_loss(self, level2_fleet):
        """The headline gate: ≥99% completion under 20% burst loss."""
        subject, objects, _ = level2_fleet
        completed = total = retransmissions = 0
        for seed in GATE_SEEDS:
            found, client, _ = asyncio.run(_run_fleet(
                objects, burst_loss_schedule(GATE_LOSS, seed=seed), seed,
                subject=subject,
            ))
            completed += len(found)
            total += len(objects)
            retransmissions += client.stats.retransmissions
        assert total == len(GATE_SEEDS) * len(objects)
        assert 100.0 * completed / total >= 99.0
        # The gate must have been earned: chaos actually dropped frames
        # and the retry machinery recovered them.
        assert retransmissions > 0


class TestCrashRecovery:
    def test_daemon_crash_restart_mid_discovery(self, level2_fleet):
        subject, objects, _ = level2_fleet
        schedule = FaultSchedule(
            (Fault(FaultKind.CRASH, start_s=0.0, stop_s=0.5,
                   nodes=(objects[0].object_id,)),),
            seed=0,
        )

        async def scenario():
            found, _, harness = await _run_fleet(
                [objects[0]], schedule, 0, subject=subject
            )
            daemon = harness.daemons[objects[0].object_id]
            return found, dict(daemon.stats), dict(harness.layer.counters)

        found, stats, layer_counters = asyncio.run(scenario())
        # The daemon was down for the opening 500 ms and lost all
        # volatile state; the client's rounds rejoin it cold.  Frames
        # toward the crashed node die at the fault layer (the live
        # analogue of the radio going dark), so the block counter is
        # the witness that the window actually bit.
        assert len(found) == 1
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1
        assert layer_counters.get("frames_blocked", 0) >= 1


class TestDuplicationIdempotence:
    def test_duplicated_que2_served_from_cache_live(self, level2_fleet):
        subject, objects, _ = level2_fleet
        schedule = FaultSchedule(
            (Fault(FaultKind.DUPLICATION, severity=1.0, extra_delay_s=0.01),),
            seed=0,
        )

        async def scenario():
            found, _, harness = await _run_fleet(
                [objects[0]], schedule, 0, subject=subject, rounds=3
            )
            return found, list(harness.taps)

        found, taps = asyncio.run(scenario())
        assert len(found) == 1
        # Every frame was delivered twice, so the daemon saw duplicate
        # QUE2s — and answered each from the idempotent RES2 cache.  The
        # eavesdropper therefore sees byte-identical RES2 copies.
        res2_raw = [
            raw for (direction, _node, raw) in taps
            if direction == "o2c"
            and isinstance(_try_parse(raw), Res2)
        ]
        assert len(res2_raw) >= 2
        assert len(set(res2_raw)) < len(res2_raw)  # true byte duplicates


def _try_parse(raw):
    try:
        return parse_message(raw)
    except MessageFormatError:
        return None


class TestLiveIndistinguishability:
    def test_advantage_zero_and_constant_lengths(self, level2_fleet, level3_fleet):
        """v3.0's claim survives the live recovery machinery (§VIII).

        Mirrors ``indistinguishability_under_faults``: loss makes the
        retry path fire, duplication hands the eavesdropper extra
        copies; neither may leak the level.
        """
        def run_level(fleet, seed=7):
            subject, objects, _ = fleet
            schedule = FaultSchedule(
                burst_loss_schedule(0.15, seed=seed).entries
                + (Fault(FaultKind.DUPLICATION, severity=0.3),),
                seed=seed,
            )
            _, _, harness = asyncio.run(_run_fleet(
                objects, schedule, seed, subject=subject
            ))
            captures = []
            for _direction, _node, message in _parse_taps(harness.taps):
                if isinstance(message, Que2):
                    captures.append(CapturedExchange(que2=message))
                elif isinstance(message, Res2):
                    captures.append(CapturedExchange(res2=message))
            return captures

        level3 = run_level(level3_fleet)
        level2 = run_level(level2_fleet)
        que2_l3 = [c for c in level3 if c.que2 is not None]
        que2_l2 = [c for c in level2 if c.que2 is not None]
        res2_l3 = [c for c in level3 if c.res2 is not None]
        res2_l2 = [c for c in level2 if c.res2 is not None]
        assert que2_l3 and que2_l2 and res2_l3 and res2_l2
        assert subject_advantage(que2_l3, que2_l2) == 0.0
        assert res2_length_spread(res2_l3) == 0
        assert res2_length_spread(res2_l2) == 0


class TestDecoyRresLive:
    def test_replayed_ticket_decoy_is_constant_length(self, level2_fleet):
        subject, objects, _ = level2_fleet
        schedule = FaultSchedule(
            (Fault(FaultKind.DUPLICATION, severity=1.0, extra_delay_s=0.01),),
            seed=3,
        )

        async def scenario():
            async with ServiceChaosHarness(schedule, seed=3) as harness:
                addr = await harness.add_object(objects[0])
                await harness.start()
                async with make_client(subject, seed=3) as client:
                    found = await client.discover(
                        [addr], rounds=3, allow_resume=False
                    )
                    assert len(found) == 1
                    # The resumption's RQUE is delivered twice: the
                    # first pops the ticket (real RRES), the duplicate
                    # is a replay (decoy RRES).
                    service = await client.resume(addr)
                    # Flush the trailing duplicated RQUE/RRES copies.
                    await asyncio.sleep(0.1)
                return service, list(harness.taps)

        service, taps = asyncio.run(scenario())
        assert service is not None
        rres_raw = [
            raw for (direction, _node, raw) in taps
            if direction == "o2c" and isinstance(_try_parse(raw), Rres)
        ]
        assert len(rres_raw) >= 2
        # Real and decoy RRES are indistinguishable by length.
        assert len({len(raw) for raw in rres_raw}) == 1
