"""ObjectServiceDaemon dispatch: graceful degradation, update plane.

Most tests drive :meth:`ObjectServiceDaemon.dispatch` directly with a
manual clock — the dispatch contract (one frame in, at most one frame
out, silence for every failure) is transport-independent, so no sockets
are needed to pin it down.  The socket-only behaviors (oversized-reply
suppression, the TCP stream loop) get real loopback endpoints.
"""

import asyncio

import pytest

from repro.backend.updatewire import UpdatePublisher, UpdateReceiver
from repro.experiments.common import make_level_fleet
from repro.protocol.messages import Rres, parse_message
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version
from repro.service.daemon import ObjectServiceDaemon
from repro.service.framing import (
    ack_frame,
    read_stream_frame,
    write_stream_frame,
)


class ManualClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def make_daemon(creds, **kwargs):
    kwargs.setdefault("clock", ManualClock())
    return ObjectServiceDaemon(creds, **kwargs)


def run_handshake(daemon, subject_creds, peer="10.0.0.1:5000", subject_peer="o"):
    """Full QUE1→RES2 through dispatch; returns (service, que2_raw)."""
    engine = SubjectEngine(subject_creds, Version.V3_0)
    res1_raw = daemon.dispatch(engine.start_round().to_bytes(), peer)
    assert res1_raw is not None
    que2 = engine.handle_res1(parse_message(res1_raw), subject_peer)
    que2_raw = que2.to_bytes()
    res2_raw = daemon.dispatch(que2_raw, peer)
    assert res2_raw is not None
    service = engine.handle_res2(parse_message(res2_raw), subject_peer)
    return engine, service, que2_raw, res2_raw


class TestDispatchDegradation:
    def test_garbage_is_recorded_silence(self, level2_fleet):
        _, objects, _ = level2_fleet
        daemon = make_daemon(objects[0])
        before = len(daemon.engine.errors)
        assert daemon.dispatch(b"\xffnot-a-frame", "p") is None
        assert daemon.dispatch(b"", "p") is None
        assert len(daemon.engine.errors) == before + 2
        assert daemon.stats["wire_errors"] == 2

    def test_subject_bound_flight_silenced(self, level2_fleet):
        subject, objects, _ = level2_fleet
        daemon = make_daemon(objects[0])
        engine = SubjectEngine(subject, Version.V3_0)
        res1_raw = daemon.dispatch(engine.start_round().to_bytes(), "p")
        # Reflect the object's own RES1 back at it: a subject-bound
        # flight must be an error record, never an answer.
        before = len(daemon.engine.errors)
        assert daemon.dispatch(res1_raw, "p") is None
        assert len(daemon.engine.errors) == before + 1

    def test_full_handshake_and_cached_res2(self, level2_fleet):
        subject, objects, _ = level2_fleet
        daemon = make_daemon(objects[0])
        _, service, que2_raw, res2_raw = run_handshake(daemon, subject)
        assert service is not None
        assert service.object_id == objects[0].object_id
        # A byte-identical duplicate QUE2 (a retransmission) gets the
        # byte-identical cached RES2 back — the idempotent resend path.
        assert daemon.dispatch(que2_raw, "10.0.0.1:5000") == res2_raw

    def test_replayed_rque_gets_constant_length_decoy(self, level2_fleet):
        subject, objects, _ = level2_fleet
        daemon = make_daemon(objects[0])
        engine, service, _, _ = run_handshake(daemon, subject)
        rque = engine.start_resumption(service.object_id)
        assert rque is not None
        raw = rque.to_bytes()
        rres_real = daemon.dispatch(raw, "10.0.0.1:5000")
        rres_decoy = daemon.dispatch(raw, "6.6.6.6:666")  # replayed ticket
        assert rres_real is not None and rres_decoy is not None
        assert isinstance(parse_message(rres_decoy), Rres)
        # Indistinguishable on the wire: same length, different bytes.
        assert len(rres_decoy) == len(rres_real)
        assert rres_decoy != rres_real

    def test_load_shedding_is_silent_and_per_peer(self, level2_fleet):
        subject, objects, _ = level2_fleet
        daemon = make_daemon(
            objects[0], peer_burst_limit=2, peer_refill_per_s=0.0
        )
        engine = SubjectEngine(subject, Version.V3_0)
        assert daemon.dispatch(engine.start_round().to_bytes(), "flood") is not None
        assert daemon.dispatch(engine.start_round().to_bytes(), "flood") is not None
        # Third frame from the same peer: over budget — silence, even
        # though the frame itself is perfectly valid.
        shed_frame = engine.start_round().to_bytes()
        assert daemon.dispatch(shed_frame, "flood") is None
        assert daemon.stats["frames_shed"] == 1
        # A different peer is unaffected (the bucket is per-peer).
        assert daemon.dispatch(engine.start_round().to_bytes(), "calm") is not None

    def test_pending_table_ttl_eviction(self, level2_fleet):
        subject, objects, _ = level2_fleet
        clock = ManualClock()
        daemon = make_daemon(objects[0], clock=clock)
        engine = SubjectEngine(subject, Version.V3_0)
        assert daemon.dispatch(engine.start_round().to_bytes(), "stale-peer")
        assert "stale-peer" in daemon.engine._sessions
        clock.t = daemon.engine.pending_ttl_s + 1.0
        # Any dispatch ticks the engine clock; the half-open handshake
        # from before the TTL is evicted.
        daemon.dispatch(engine.start_round().to_bytes(), "fresh-peer")
        assert "stale-peer" not in daemon.engine._sessions

    def test_crash_goes_dark_and_restart_rejoins_cold(self, level2_fleet):
        subject, objects, _ = level2_fleet
        daemon = make_daemon(objects[0])
        run_handshake(daemon, subject)
        assert daemon.engine.established
        daemon.crash()
        assert daemon.is_down
        engine = SubjectEngine(subject, Version.V3_0)
        assert daemon.dispatch(engine.start_round().to_bytes(), "p") is None
        assert daemon.stats["frames_dropped_down"] == 1
        assert not daemon.engine.established  # volatile state gone
        daemon.restart()
        _, service, _, _ = run_handshake(daemon, subject, peer="10.0.0.2:6000")
        assert service is not None
        assert daemon.stats["crashes"] == 1
        assert daemon.stats["restarts"] == 1


class TestUpdateDispatch:
    """Applying a revocation mutates the object credentials (that is the
    point), so these tests build a private fleet instead of sharing the
    session-scoped one."""

    @pytest.fixture(scope="class")
    def update_fleet(self):
        return make_level_fleet(1, level=2)

    def _revocation(self, fleet):
        subject, objects, backend = fleet
        receiver = UpdateReceiver(
            objects[0].object_id, backend.admin_public, object_creds=objects[0]
        )
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject(
            objects[0].object_id, subject.subject_id
        )
        return objects[0], receiver, message

    def test_apply_then_reack_without_reapply(self, update_fleet):
        creds, receiver, message = self._revocation(update_fleet)
        daemon = make_daemon(creds, update_receiver=receiver)
        raw = message.to_bytes()
        assert daemon.dispatch(raw, "backend") == ack_frame(message.sequence)
        assert daemon.stats["updates_applied"] == 1
        errors_after_apply = len(receiver.errors)
        # The duplicate (a lost-ACK retransmission) is re-ACKed but not
        # re-applied — the receiver never even sees it.
        assert daemon.dispatch(raw, "backend") == ack_frame(message.sequence)
        assert daemon.stats["updates_reacked"] == 1
        assert daemon.stats["updates_applied"] == 1
        assert len(receiver.errors) == errors_after_apply

    def test_no_receiver_means_silence(self, update_fleet):
        _, objects, _ = update_fleet
        _, _, message = self._revocation(update_fleet)
        daemon = make_daemon(objects[0])  # update_receiver=None
        assert daemon.dispatch(message.to_bytes(), "backend") is None
        assert daemon.stats["updates_rejected"] == 1

    def test_mangled_update_is_recorded_silence(self, update_fleet):
        creds, receiver, message = self._revocation(update_fleet)
        daemon = make_daemon(creds, update_receiver=receiver)
        raw = message.to_bytes()
        assert daemon.dispatch(raw[:6], "backend") is None  # truncated
        assert daemon.stats["wire_errors"] == 1
        # A bit-flip that survives parsing dies on the admin signature.
        flipped = raw[:-1] + bytes([raw[-1] ^ 0x01])
        assert daemon.dispatch(flipped, "backend") is None
        assert daemon.stats["updates_applied"] == 0
        assert receiver.last_sequence == 0


class _CollectingClient(asyncio.DatagramProtocol):
    def __init__(self):
        self.received: list[bytes] = []

    def datagram_received(self, data: bytes, addr) -> None:
        self.received.append(data)


class TestSocketPaths:
    def test_oversized_reply_is_suppressed(self, level2_fleet):
        subject, objects, _ = level2_fleet

        async def scenario():
            # A RES1 is far larger than 64 B: the daemon must not try to
            # squeeze it out (or worse, announce the problem) — silence.
            async with ObjectServiceDaemon(objects[0], max_datagram=64) as daemon:
                loop = asyncio.get_running_loop()
                transport, protocol = await loop.create_datagram_endpoint(
                    _CollectingClient, local_addr=("127.0.0.1", 0)
                )
                try:
                    engine = SubjectEngine(subject, Version.V3_0)
                    transport.sendto(engine.start_round().to_bytes(), daemon.address)
                    await asyncio.sleep(0.2)
                    assert protocol.received == []
                    assert daemon.stats["replies_oversized"] == 1
                finally:
                    transport.close()

        asyncio.run(scenario())

    def test_stream_handshake_end_to_end(self, level2_fleet):
        subject, objects, _ = level2_fleet

        async def scenario():
            async with ObjectServiceDaemon(objects[0]) as daemon:
                reader, writer = await asyncio.open_connection(*daemon.address)
                try:
                    engine = SubjectEngine(subject, Version.V3_0)
                    write_stream_frame(writer, engine.start_round().to_bytes())
                    await writer.drain()
                    res1 = parse_message(
                        await asyncio.wait_for(read_stream_frame(reader), 5.0)
                    )
                    que2 = engine.handle_res1(res1, "o")
                    write_stream_frame(writer, que2.to_bytes())
                    await writer.drain()
                    res2 = parse_message(
                        await asyncio.wait_for(read_stream_frame(reader), 5.0)
                    )
                    service = engine.handle_res2(res2, "o")
                    assert service is not None
                    assert service.object_id == objects[0].object_id
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())

    def test_hostile_stream_length_closes_connection(self, level2_fleet):
        _, objects, _ = level2_fleet

        async def scenario():
            async with ObjectServiceDaemon(objects[0]) as daemon:
                reader, writer = await asyncio.open_connection(*daemon.address)
                try:
                    writer.write((1 << 31).to_bytes(4, "big"))
                    await writer.drain()
                    # Daemon hangs up without a byte of explanation.
                    assert await asyncio.wait_for(reader.read(), 5.0) == b""
                    assert daemon.stats["wire_errors"] == 1
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())
