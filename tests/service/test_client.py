"""SubjectServiceClient against live daemons: cold/warm/TCP paths."""

import asyncio
import random
from contextlib import AsyncExitStack

from repro.net.run import RetryPolicy
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version
from repro.service.client import SubjectServiceClient
from repro.service.daemon import ObjectServiceDaemon

from .conftest import FAST_PHASE1_S, FAST_RETRY


async def _fleet_daemons(stack: AsyncExitStack, objects, **kwargs):
    daemons = [
        await stack.enter_async_context(ObjectServiceDaemon(o, **kwargs))
        for o in objects
    ]
    return daemons, [d.address for d in daemons]


def make_client(creds, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("phase1_timeout_s", FAST_PHASE1_S)
    return SubjectServiceClient(creds, **kwargs)


class TestColdDiscovery:
    def test_level2_full_handshakes(self, level2_fleet):
        subject, objects, _ = level2_fleet

        async def scenario():
            async with AsyncExitStack() as stack:
                _, endpoints = await _fleet_daemons(stack, objects)
                async with make_client(subject) as client:
                    found = await client.discover(
                        endpoints, rounds=3, allow_resume=False
                    )
            assert len(found) == len(objects)
            for addr, service in found.items():
                # The staff variant of the Level 2 profile.
                assert service.functions == ("play", "cast")
                assert client.object_at[addr] == service.object_id
            assert {s.object_id for s in found.values()} == {
                o.object_id for o in objects
            }
            assert client.stats.exchanges_given_up == 0
            return client

        client = asyncio.run(scenario())
        assert client.stats.rounds >= 1

    def test_level1_short_form(self, level1_fleet):
        subject, objects, _ = level1_fleet

        async def scenario():
            async with AsyncExitStack() as stack:
                _, endpoints = await _fleet_daemons(stack, objects)
                async with make_client(subject) as client:
                    found = await client.discover(
                        endpoints, rounds=3, allow_resume=False
                    )
            assert len(found) == len(objects)
            for service in found.values():
                assert service.functions == ("read_temperature",)
                assert service.level_seen == 1

        asyncio.run(scenario())


class TestWarmResumption:
    def test_second_discover_resumes_every_endpoint(self, level2_fleet):
        subject, objects, _ = level2_fleet

        async def scenario():
            async with AsyncExitStack() as stack:
                _, endpoints = await _fleet_daemons(stack, objects)
                async with make_client(subject) as client:
                    cold = await client.discover(endpoints, rounds=3)
                    assert len(cold) == len(objects)
                    rounds_after_cold = client.stats.rounds
                    warm = await client.discover(endpoints, rounds=3)
            assert len(warm) == len(objects)
            # Every endpoint settled on the 2-message warm path: no new
            # full-handshake rounds were needed.
            assert client.stats.resumptions == len(objects)
            assert client.stats.resumption_fallbacks == 0
            assert client.stats.rounds == rounds_after_cold
            for addr in warm:
                assert warm[addr].object_id == cold[addr].object_id

        asyncio.run(scenario())


class TestTcpFallback:
    def test_oversized_budget_demotes_to_stream(self, level2_fleet):
        subject, objects, _ = level2_fleet

        async def scenario():
            async with AsyncExitStack() as stack:
                _, endpoints = await _fleet_daemons(stack, objects[:2])
                # 64 B cannot carry even a QUE1: every endpoint demotes
                # to the stream transport and completes there.
                async with make_client(subject, max_datagram=64) as client:
                    found = await client.discover(
                        endpoints, rounds=3, allow_resume=False
                    )
            assert len(found) == 2
            assert client.stats.tcp_fallbacks == 2
            for service in found.values():
                assert service.functions == ("play", "cast")

        asyncio.run(scenario())


class TestRetrySemantics:
    def test_jitter_rng_seeded_like_simulator(self):
        # A live client and a simulated run with the same seed must draw
        # identical retry timeouts — chaos runs replay from their seed.
        policy = RetryPolicy()
        client = SubjectServiceClient.__new__(SubjectServiceClient)
        client._jitter_rng = random.Random((1234 & 0xFFFFFFFF) ^ 0x5EED5)
        simulator_rng = random.Random((1234 & 0xFFFFFFFF) ^ 0x5EED5)
        live = [policy.timeout_s(a, client._jitter_rng) for a in range(6)]
        sim = [policy.timeout_s(a, simulator_rng) for a in range(6)]
        assert live == sim

    def test_give_up_counted_once_per_exchange_live(self, level2_fleet):
        subject, objects, _ = level2_fleet

        async def scenario():
            # One token, never refilled: the daemon answers QUE1 and
            # then sheds every QUE2 (original and retransmissions).
            async with ObjectServiceDaemon(
                objects[0], peer_burst_limit=1, peer_refill_per_s=0.0
            ) as daemon:
                async with make_client(subject) as client:
                    found = await client.discover(
                        [daemon.address], rounds=1, allow_resume=False
                    )
            assert found == {}
            # Every retry fired, but the *exchange* is one give-up.
            assert client.stats.retransmissions == FAST_RETRY.max_retries
            assert client.stats.exchanges_given_up == 1
            assert daemon.stats["frames_shed"] >= 1

        asyncio.run(scenario())

    def test_duplicate_res2_answers_retransmission(self, level2_fleet):
        subject, objects, _ = level2_fleet

        async def scenario():
            async with ObjectServiceDaemon(objects[0]) as daemon:
                engine = SubjectEngine(subject, Version.V3_0)
                peer = "c"
                res1_raw = daemon.dispatch(
                    engine.start_round().to_bytes(), peer
                )
                from repro.protocol.messages import parse_message

                que2 = engine.handle_res1(parse_message(res1_raw), "o")
                first = daemon.dispatch(que2.to_bytes(), peer)
                again = daemon.dispatch(que2.to_bytes(), peer)
                assert first is not None
                assert first == again  # byte-identical cached RES2

        asyncio.run(scenario())
