"""Shared fixtures for the live service-path suite.

No pytest-asyncio here: every async test is a plain function wrapping
its coroutine in ``asyncio.run`` — each test gets a fresh event loop,
which doubles as isolation between daemons (nothing leaks a transport
across tests).

Key generation dominates setup cost, so fleets are session-scoped; the
engines and daemons built from them hold all the mutable state and are
created fresh inside each test's event loop.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import make_level_fleet
from repro.net.run import RetryPolicy

#: Retry knobs tuned for loopback RTTs: aggressive timers so a chaos
#: run with 12 rounds stays in CI budget, same semantics as the
#: simulator's policy.
FAST_RETRY = RetryPolicy(base_timeout_s=0.06, give_up_s=1.5)
FAST_PHASE1_S = 0.3


@pytest.fixture(scope="session")
def level1_fleet():
    return make_level_fleet(2, level=1)


@pytest.fixture(scope="session")
def level2_fleet():
    return make_level_fleet(3, level=2)


@pytest.fixture(scope="session")
def level3_fleet():
    return make_level_fleet(3, level=3)
