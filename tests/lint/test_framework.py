"""Framework mechanics: suppressions, baselines, reporters, CLI exit codes."""

import json
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import collect_files, lint_paths, lint_source, run
from repro.lint.findings import Finding
from repro.lint.report import LintResult, render_json, render_text

BAD_CT = textwrap.dedent(
    """
    def check(expected_mac, given_mac):
        return expected_mac == given_mac
    """
)

CRYPTO_PATH = "src/repro/crypto/fixture.py"


class TestSuppression:
    def test_disable_comment_silences_rule(self):
        src = BAD_CT.replace(
            "return expected_mac == given_mac",
            "return expected_mac == given_mac  # argus-lint: disable=CT-COMPARE",
        )
        assert not lint_source(src, CRYPTO_PATH)

    def test_disable_all_wildcard(self):
        src = BAD_CT.replace(
            "return expected_mac == given_mac",
            "return expected_mac == given_mac  # argus-lint: disable=all",
        )
        assert not lint_source(src, CRYPTO_PATH)

    def test_disable_other_rule_does_not_silence(self):
        src = BAD_CT.replace(
            "return expected_mac == given_mac",
            "return expected_mac == given_mac  # argus-lint: disable=CRYPTO-RAND",
        )
        assert lint_source(src, CRYPTO_PATH)

    def test_suppression_is_per_line(self):
        src = (
            "# argus-lint: disable=CT-COMPARE\n" + BAD_CT
        )  # comment on a different line: finding stays
        assert lint_source(src, CRYPTO_PATH)


class TestBaseline:
    def _finding(self, message="m", line=3):
        return Finding(
            path=CRYPTO_PATH, line=line, col=1, rule_id="CT-COMPARE", message=message
        )

    def test_baselined_finding_does_not_fail(self, tmp_path):
        crypto_dir = tmp_path / "src" / "repro" / "crypto"
        crypto_dir.mkdir(parents=True)
        (crypto_dir / "fixture.py").write_text(BAD_CT)
        baseline_file = tmp_path / "lint-baseline.json"

        findings, _, _ = lint_paths([crypto_dir], relative_to=tmp_path)
        assert len(findings) == 1
        Baseline.write(baseline_file, findings)

        result = run([crypto_dir], baseline_file, relative_to=tmp_path)
        assert not result.failed
        assert len(result.baselined) == 1 and not result.new

    def test_new_finding_still_fails_with_baseline(self, tmp_path):
        crypto_dir = tmp_path / "src" / "repro" / "crypto"
        crypto_dir.mkdir(parents=True)
        (crypto_dir / "fixture.py").write_text(BAD_CT)
        baseline_file = tmp_path / "lint-baseline.json"
        findings, _, _ = lint_paths([crypto_dir], relative_to=tmp_path)
        Baseline.write(baseline_file, findings)

        (crypto_dir / "fresh.py").write_text(
            BAD_CT.replace("expected_mac", "other_tag")
        )
        result = run([crypto_dir], baseline_file, relative_to=tmp_path)
        assert result.failed
        assert len(result.new) == 1 and len(result.baselined) == 1

    def test_baseline_multiplicity_is_bounded(self):
        baseline = Baseline.load(None)
        f = self._finding()
        baseline.entries[f.fingerprint] = 1
        new, old = baseline.split([f, self._finding(line=9)])
        assert len(old) == 1 and len(new) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert not Baseline.load(tmp_path / "absent.json").entries

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text("[1, 2]")
        with pytest.raises(BaselineError):
            Baseline.load(bad)


class TestReporters:
    def _result(self):
        return LintResult(
            new=[Finding(path="a.py", line=1, col=1, rule_id="CT-COMPARE", message="x")],
            baselined=[],
            suppressed=2,
            checked_files=3,
        )

    def test_text_report(self):
        text = render_text(self._result())
        assert "a.py:1:1: CT-COMPARE x" in text
        assert "1 new finding(s)" in text and "2 suppressed" in text

    def test_json_report(self):
        payload = json.loads(render_json(self._result()))
        assert payload["failed"] is True
        assert payload["new"][0]["rule"] == "CT-COMPARE"
        assert payload["checked_files"] == 3

    def test_exit_codes(self):
        assert self._result().exit_code == 1
        assert LintResult().exit_code == 0


class TestCli:
    def test_lint_clean_dir_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert cli_main(["lint", str(good)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_lint_bad_file_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        crypto_dir = tmp_path / "src" / "repro" / "crypto"
        crypto_dir.mkdir(parents=True)
        (crypto_dir / "fixture.py").write_text(BAD_CT)
        assert cli_main(["lint", "src"]) == 1
        assert "CT-COMPARE" in capsys.readouterr().out

    def test_lint_missing_path_exits_two(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "does-not-exist"]) == 2

    def test_write_baseline_roundtrip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        crypto_dir = tmp_path / "src" / "repro" / "crypto"
        crypto_dir.mkdir(parents=True)
        (crypto_dir / "fixture.py").write_text(BAD_CT)
        assert cli_main(["lint", "src", "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        # Grandfathered now — and --no-baseline resurfaces it.
        assert cli_main(["lint", "src"]) == 0
        assert cli_main(["lint", "src", "--no-baseline"]) == 1

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("CT-COMPARE", "NONCE-REUSE", "INDIST-RETURN"):
            assert rule_id in out

    def test_json_format(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert cli_main(["lint", str(good), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["failed"] is False


class TestCollect:
    def test_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = collect_files([tmp_path])
        assert [f.name for f in files] == ["real.py"]

    def test_syntax_error_reported_not_crashed(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings, _, checked = lint_paths([bad], relative_to=tmp_path)
        assert checked == 1
        assert findings and findings[0].rule_id == "PARSE-ERROR"
