"""POOL-SAFETY fixtures: op-tuple key slots and worker-closure globals."""

import textwrap

from repro.lint.engine import lint_source, lint_sources
from repro.lint.rules import RULES_BY_ID

RULE = [RULES_BY_ID["POOL-SAFETY"]]


def findings(source: str, path: str = "src/repro/crypto/x.py") -> list:
    return [
        f
        for f in lint_source(textwrap.dedent(source), path, rules=RULE)
        if f.rule_id == "POOL-SAFETY"
    ]


class TestOpTupleKeySlots:
    def test_bad_live_key_handle_in_op_tuple(self):
        src = """
            def decompose(leaf, strength, sig, msg):
                return ("verify", leaf.public_key, strength, sig, msg)
        """
        out = findings(src)
        assert out and "not visibly serialized" in out[0].message

    def test_good_serializer_call_in_key_slot(self):
        src = """
            def decompose(leaf, strength, sig, msg):
                return ("verify", leaf.public_key.to_bytes(), strength, sig, msg)
        """
        assert not findings(src)

    def test_good_serialized_name_in_key_slot(self):
        src = """
            def decompose(priv_der, strength, peer_kexm):
                return ("derive", priv_der, strength, peer_kexm)
        """
        assert not findings(src)

    def test_good_short_tuples_are_not_op_tuples(self):
        # ("sign", key) pairs (e.g. meter keys) must not be mistaken for
        # workpool ops — ops always carry >= 4 elements.
        src = """
            def meter_key(key):
                return ("sign", key)
        """
        assert not findings(src)


WORKER_MODULE = """
    from concurrent.futures import ProcessPoolExecutor

    _CACHE = {}

    def _work(item):
        cached = _CACHE.get(item)
        return cached or item

    def run(batch):
        with ProcessPoolExecutor() as executor:
            return list(executor.map(_work, batch))
"""


class TestWorkerClosureGlobals:
    def test_bad_mutable_global_in_worker_function(self):
        out = findings(WORKER_MODULE)
        assert out and "_CACHE" in out[0].message

    def test_good_pool_safe_annotation(self):
        src = WORKER_MODULE.replace(
            "_CACHE = {}", "_CACHE = {}  # argus-lint: pool-safe"
        )
        assert not findings(src)

    def test_good_register_at_fork_in_module(self):
        src = (
            "import os\n"
            + textwrap.dedent(WORKER_MODULE)
            + "\nos.register_at_fork(after_in_child=_CACHE.clear)\n"
        )
        assert not lint_source(src, "src/repro/crypto/x.py", rules=RULE)

    def test_good_immutable_global_is_fine(self):
        src = WORKER_MODULE.replace("_CACHE = {}", "_CACHE = None")
        assert not findings(src)

    def test_bad_helper_reached_through_call_graph(self):
        # The global is touched two hops below the pooled entry point,
        # in another module — the closure walk must still find it.
        worker = """
            from repro.crypto.deep_helper import lookup

            def _work(item):
                return lookup(item)

            def run(batch, executor):
                return list(executor.map(_work, batch))
        """
        helper = """
            _TABLE = {}

            def lookup(item):
                return _fetch(item)

            def _fetch(item):
                return _TABLE.get(item)
        """
        out = [
            f
            for f in lint_sources(
                {
                    "src/repro/crypto/pool_entry.py": textwrap.dedent(worker),
                    "src/repro/crypto/deep_helper.py": textwrap.dedent(helper),
                },
                rules=RULE,
            )
            if f.rule_id == "POOL-SAFETY"
        ]
        assert out
        assert out[0].path == "src/repro/crypto/deep_helper.py"
        assert "_TABLE" in out[0].message

    def test_good_initializer_kwarg_is_a_root_but_clean(self):
        src = """
            from concurrent.futures import ProcessPoolExecutor

            def _init():
                pass

            def run(batch, work):
                with ProcessPoolExecutor(initializer=_init) as executor:
                    return list(executor.map(work, batch))
        """
        assert not findings(src)
