"""Facts extraction and whole-program assembly: the analyzer substrate."""

import json
import textwrap

from repro.lint.base import ModuleContext
from repro.lint.facts import extract_module_facts
from repro.lint.program import Program


def facts_for(source: str, path: str = "src/repro/crypto/x.py") -> dict:
    context = ModuleContext.build(path, textwrap.dedent(source))
    return extract_module_facts(context.path, context.source, context.tree, context.module)


class TestFactExtraction:
    def test_facts_are_json_serializable(self):
        facts = facts_for(
            """
            from repro.crypto import kdf

            _CACHE = {}

            class Engine:
                def derive(self, pre, binder):
                    key = kdf.derive_k2(pre, binder)
                    return key
            """
        )
        assert json.loads(json.dumps(facts)) == facts

    def test_import_resolution(self):
        facts = facts_for(
            """
            from repro.crypto import kdf
            from repro.protocol.messages import Que1
            import repro.crypto.aead as aead

            def f(x):
                kdf.derive_k2(x, x)
                Que1(n_s=x)
                aead.encrypt(x, x)
            """
        )
        callees = [c["callee"] for c in facts["functions"][0]["calls"]]
        assert "repro.crypto.kdf.derive_k2" in callees
        assert "repro.protocol.messages.Que1" in callees
        assert "repro.crypto.aead.encrypt" in callees

    def test_self_method_calls_resolve_to_own_class(self):
        facts = facts_for(
            """
            class Engine:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return 1
            """
        )
        outer = next(f for f in facts["functions"] if f["name"] == "outer")
        assert outer["calls"][0]["callee"] == "repro.crypto.x.Engine.inner"

    def test_param_taint_flows_through_assignments(self):
        facts = facts_for(
            """
            def f(secret, other):
                alias = secret
                combined = alias + b"!"
                return combined
            """
        )
        fn = facts["functions"][0]
        assert ["param", 0] in fn["ret"]
        assert ["param", 1] not in fn["ret"]

    def test_loop_carried_taint(self):
        facts = facts_for(
            """
            def f(items, secret):
                acc = b""
                for item in items:
                    acc = acc + secret
                return acc
            """
        )
        fn = facts["functions"][0]
        assert ["param", 1] in fn["ret"]

    def test_mutable_global_detection_and_pool_safe_marker(self):
        facts = facts_for(
            """
            TABLE = {}
            SAFE = {}  # argus-lint: pool-safe
            LIMIT = 512
            """
        )
        assert facts["globals"]["TABLE"]["mutable"]
        assert not facts["globals"]["TABLE"]["pool_safe"]
        assert facts["globals"]["SAFE"]["pool_safe"]
        assert not facts["globals"]["LIMIT"]["mutable"]

    def test_register_at_fork_needs_a_real_call(self):
        # A docstring *mention* must not count (workpool.py regression).
        assert not facts_for('"""uses os.register_at_fork somewhere"""')[
            "registers_at_fork"
        ]
        assert facts_for(
            """
            import os
            os.register_at_fork(after_in_child=list)
            """
        )["registers_at_fork"]

    def test_op_tuple_key_forms(self):
        facts = facts_for(
            """
            def f(leaf, priv_der, strength, sig, msg):
                a = ("verify", leaf.to_bytes(), strength, sig, msg)
                b = ("derive", priv_der, strength, msg)
                return a, b
            """
        )
        forms = {op["kind"]: op["key_form"] for op in facts["functions"][0]["op_tuples"]}
        assert forms == {"verify": "call:to_bytes", "derive": "name:priv_der"}


class TestProgramAssembly:
    def _program(self) -> Program:
        a = facts_for(
            """
            from repro.crypto.helper import leaf

            def top(x):
                return leaf(x)
            """,
            path="src/repro/crypto/entry.py",
        )
        b = facts_for(
            """
            def leaf(x):
                return bottom(x)

            def bottom(x):
                return x
            """,
            path="src/repro/crypto/helper.py",
        )
        return Program.from_facts([a, b])

    def test_cross_module_function_index(self):
        program = self._program()
        assert "repro.crypto.entry.top" in program.functions
        assert "repro.crypto.helper.bottom" in program.functions

    def test_call_graph_edges_cross_modules(self):
        program = self._program()
        top = program.functions["repro.crypto.entry.top"]
        assert [c.qualified for c in program.callees(top)] == [
            "repro.crypto.helper.leaf"
        ]

    def test_transitive_closure(self):
        program = self._program()
        names = [f.qualified for f in program.closure(["repro.crypto.entry.top"])]
        assert names == [
            "repro.crypto.entry.top",
            "repro.crypto.helper.bottom",
            "repro.crypto.helper.leaf",
        ]

    def test_from_facts_round_trips_through_json(self):
        # The cache stores facts as JSON; Program must behave identically
        # when built from round-tripped dicts.
        a = facts_for("def f(x):\n    return g(x)\n\ndef g(x):\n    return x\n")
        direct = Program.from_facts([a])
        revived = Program.from_facts([json.loads(json.dumps(a))])
        assert sorted(direct.functions) == sorted(revived.functions)
