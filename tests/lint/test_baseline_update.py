"""Baseline-update UX and reporter determinism (PR 8 satellites).

Covers: byte-stable ``--update-baseline`` output, stale-fingerprint
warnings, the suppression/baseline interaction contract, and the JSON
reporter's ordering guarantee.
"""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.report import LintResult, render_json

BAD_PRINT = (
    "def show(session_key):\n"
    "    print(session_key)\n"
)


def crypto_file(tmp_path: Path, name: str, source: str) -> Path:
    pkg = tmp_path / "src" / "repro" / "crypto"
    pkg.mkdir(parents=True, exist_ok=True)
    file = pkg / name
    file.write_text(source)
    return file


class TestUpdateBaseline:
    def test_byte_stable_across_two_runs(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        crypto_file(tmp_path, "b_leak.py", BAD_PRINT)
        crypto_file(tmp_path, "a_leak.py", BAD_PRINT)
        baseline = tmp_path / "baseline.json"
        argv = ["lint", "src", "--baseline", str(baseline), "--update-baseline"]
        assert cli_main(argv) == 0
        first = baseline.read_bytes()
        assert cli_main(argv) == 0
        assert baseline.read_bytes() == first
        assert first.endswith(b"\n")

    def test_fingerprints_are_sorted(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        crypto_file(tmp_path, "b_leak.py", BAD_PRINT)
        crypto_file(tmp_path, "a_leak.py", BAD_PRINT)
        baseline = tmp_path / "baseline.json"
        cli_main(["lint", "src", "--baseline", str(baseline), "--update-baseline"])
        entries = json.loads(baseline.read_text())["findings"]
        keys = [(e["rule"], e["path"], e["message"]) for e in entries]
        assert keys == sorted(keys)
        assert len(keys) >= 2

    def test_stale_entry_warned_and_dropped(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        file = crypto_file(tmp_path, "leak.py", BAD_PRINT)
        baseline = tmp_path / "baseline.json"
        cli_main(["lint", "src", "--baseline", str(baseline), "--update-baseline"])
        assert json.loads(baseline.read_text())["findings"]

        # Remove the offending code: the entry is now stale.
        file.write_text("def show(session_key):\n    return None\n")
        capsys.readouterr()
        cli_main(["lint", "src", "--baseline", str(baseline), "--update-baseline"])
        err = capsys.readouterr().err
        assert "stale baseline entry dropped" in err
        assert json.loads(baseline.read_text())["findings"] == []

    def test_update_exits_zero_even_with_findings(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        crypto_file(tmp_path, "leak.py", BAD_PRINT)
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(["lint", "src", "--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        # The refreshed baseline then makes a plain run pass.
        assert cli_main(["lint", "src", "--baseline", str(baseline)]) == 0


class TestSuppressionBaselineInteraction:
    def test_suppressed_and_baselined_counts_once(self, tmp_path, monkeypatch, capsys):
        # A finding that is both suppressed in-source and listed in the
        # baseline is counted exactly once — as suppressed; the baseline
        # entry goes stale rather than double-absorbing.
        monkeypatch.chdir(tmp_path)
        crypto_file(
            tmp_path,
            "leak.py",
            "def show(session_key):\n"
            "    print(session_key)  # argus-lint: disable=SECRET-LEAK\n",
        )
        baseline = tmp_path / "baseline.json"
        finding = Finding(
            path="src/repro/crypto/leak.py",
            line=2,
            col=5,
            rule_id="SECRET-LEAK",
            message="secret-named value 'session_key' passed to print()",
        )
        Baseline.write(baseline, [finding])
        rc = cli_main(
            ["lint", "src", "--baseline", str(baseline), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["new"] == []
        assert payload["baselined"] == []  # absorbed by suppression, not baseline
        assert payload["suppressed"] == 1

    def test_removing_code_removes_stale_entry_on_update(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        file = crypto_file(tmp_path, "leak.py", BAD_PRINT)
        baseline = tmp_path / "baseline.json"
        cli_main(["lint", "src", "--baseline", str(baseline), "--update-baseline"])
        before = json.loads(baseline.read_text())["findings"]
        assert before
        file.unlink()
        cli_main(["lint", "src", "--baseline", str(baseline), "--update-baseline"])
        assert json.loads(baseline.read_text())["findings"] == []


class TestReporterDeterminism:
    def _findings_out_of_registration_order(self):
        # Same path+line, rule ids deliberately fed in reverse-sorted
        # order to prove the reporter re-sorts.
        return [
            Finding("src/b.py", 3, 1, "SECRET-LEAK", "zzz"),
            Finding("src/b.py", 3, 1, "CT-COMPARE", "aaa"),
            Finding("src/a.py", 9, 1, "NONCE-REUSE", "mmm"),
            Finding("src/a.py", 2, 1, "SECRET-FLOW", "nnn"),
        ]

    def test_json_reporter_sorts_by_path_line_rule(self):
        result = LintResult(new=self._findings_out_of_registration_order())
        payload = json.loads(render_json(result))
        keys = [(f["path"], f["line"], f["rule"]) for f in payload["new"]]
        assert keys == [
            ("src/a.py", 2, "SECRET-FLOW"),
            ("src/a.py", 9, "NONCE-REUSE"),
            ("src/b.py", 3, "CT-COMPARE"),
            ("src/b.py", 3, "SECRET-LEAK"),
        ]

    def test_json_output_identical_for_shuffled_input(self):
        findings = self._findings_out_of_registration_order()
        a = render_json(LintResult(new=list(findings)))
        b = render_json(LintResult(new=list(reversed(findings))))
        assert a == b

    def test_sarif_output_is_deterministic_too(self):
        from repro.lint.report import RENDERERS

        findings = self._findings_out_of_registration_order()
        a = RENDERERS["sarif"](LintResult(new=list(findings)))
        b = RENDERERS["sarif"](LintResult(new=list(reversed(findings))))
        assert a == b
        log = json.loads(a)
        assert log["version"] == "2.1.0"
        rules = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert {"SECRET-FLOW", "PROTO-STATE", "POOL-SAFETY"} <= rules
        assert len(log["runs"][0]["results"]) == 4
