"""Regression: the INDIST-RETURN-driven restructure changed no behavior.

The rule forced ``ObjectEngine.handle_que2``'s variant selection into a
single-exit shape (both faces fall through to one ``payload is None``
check).  These tests pin the §VI-B properties around that edit: the
structural distinguisher still measures zero advantage under v3.0, RES2
lengths stay constant per object, and the no-visible-variant silence
path still works for both protocol versions.
"""

from repro.attacks.channel import run_exchange
from repro.attacks.distinguisher import res2_length_spread, subject_advantage
from repro.protocol.errors import VisibilityError
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version


class TestDistinguisherStillBlind:
    def test_v3_advantage_is_zero(self, fellow, staff, media, kiosk):
        l3 = [run_exchange(SubjectEngine(fellow, Version.V3_0),
                           ObjectEngine(kiosk, Version.V3_0)) for _ in range(4)]
        l2 = [run_exchange(SubjectEngine(staff, Version.V3_0),
                           ObjectEngine(media, Version.V3_0)) for _ in range(4)]
        assert subject_advantage(l3, l2) == 0.0

    def test_v3_res2_length_spread_zero_across_faces(self, fellow, staff, kiosk):
        captures = [
            run_exchange(SubjectEngine(fellow, Version.V3_0), ObjectEngine(kiosk, Version.V3_0)),
            run_exchange(SubjectEngine(staff, Version.V3_0), ObjectEngine(kiosk, Version.V3_0)),
        ]
        assert captures[0].outcome.level_seen == 3
        assert captures[1].outcome.level_seen == 2
        assert res2_length_spread(captures) == 0

    def test_v2_advantage_still_one(self, fellow, staff, media, kiosk):
        """The ablation survives: v2.0 still leaks, proving the
        restructure did not accidentally equalize the wrong layer."""
        l3 = [run_exchange(SubjectEngine(fellow, Version.V2_0),
                           ObjectEngine(kiosk, Version.V2_0)) for _ in range(4)]
        l2 = [run_exchange(SubjectEngine(staff, Version.V2_0),
                           ObjectEngine(media, Version.V2_0)) for _ in range(4)]
        assert subject_advantage(l3, l2) == 1.0


class TestNoVariantSilencePath:
    """The early return that moved: a subject matching *no* variant gets
    silence, recorded as VisibilityError — same as before the edit."""

    def test_visitor_gets_silence_and_visibility_error(self, visitor, media):
        obj = ObjectEngine(media, Version.V3_0)
        capture = run_exchange(SubjectEngine(visitor, Version.V3_0), obj)
        assert capture.res2 is None
        assert capture.outcome is None
        assert any(isinstance(e, VisibilityError) for e in obj.errors)

    def test_fellow_still_reaches_covert_face(self, fellow, kiosk):
        obj = ObjectEngine(kiosk, Version.V3_0)
        capture = run_exchange(SubjectEngine(fellow, Version.V3_0), obj)
        assert capture.outcome is not None
        assert capture.outcome.level_seen == 3
        assert not any(isinstance(e, VisibilityError) for e in obj.errors)

    def test_staff_still_served_level2(self, staff, media):
        capture = run_exchange(SubjectEngine(staff, Version.V3_0),
                               ObjectEngine(media, Version.V3_0))
        assert capture.outcome.level_seen == 2
