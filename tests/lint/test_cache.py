"""Incremental-cache behavior: correctness of invalidation, and speed.

The acceptance gate: a warm run over the unchanged real ``src`` tree
must finish in < 25% of the cold-run wall time, because it stats files
and replays cached verdicts instead of parsing and re-analyzing.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.lint.cache import LintCache, ruleset_signature
from repro.lint.engine import lint_paths, run

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_PRINT = (
    "def show(session_key):\n"
    "    print(session_key)\n"
)


def write_crypto_module(tmp_path: Path, name: str, source: str) -> Path:
    pkg = tmp_path / "src" / "repro" / "crypto"
    pkg.mkdir(parents=True, exist_ok=True)
    file = pkg / name
    file.write_text(source)
    return file


class TestCacheCorrectness:
    def test_warm_run_reports_identical_findings(self, tmp_path):
        write_crypto_module(tmp_path, "leaky.py", BAD_PRINT)
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path / "src"], relative_to=tmp_path, cache_path=cache)
        warm = lint_paths([tmp_path / "src"], relative_to=tmp_path, cache_path=cache)
        assert cold == warm
        assert cold[0], "fixture should produce findings"

    def test_edit_invalidates_only_that_file(self, tmp_path):
        file = write_crypto_module(tmp_path, "leaky.py", BAD_PRINT)
        write_crypto_module(tmp_path, "clean.py", "X = 1\n")
        cache = tmp_path / "cache.json"
        lint_paths([tmp_path / "src"], relative_to=tmp_path, cache_path=cache)
        file.write_text("def show(session_key):\n    return None\n")
        findings, _, _ = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path, cache_path=cache
        )
        assert not [f for f in findings if f.rule_id == "SECRET-LEAK"]

    def test_touch_without_content_change_revalidates_by_hash(self, tmp_path):
        file = write_crypto_module(tmp_path, "leaky.py", BAD_PRINT)
        cache_path = tmp_path / "cache.json"
        lint_paths([tmp_path / "src"], relative_to=tmp_path, cache_path=cache_path)
        os.utime(file, ns=(1, 1))  # rewrite timestamps, keep bytes
        sig = ruleset_signature([])
        cold_findings, _, _ = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path, cache_path=cache_path
        )
        assert any(f.rule_id == "SECRET-LEAK" for f in cold_findings)
        # And the entry was revalidated (hash match), not recomputed cold.
        data = json.loads(cache_path.read_text())
        entry = data["files"]["src/repro/crypto/leaky.py"]
        assert entry["mtime_ns"] == os.stat(file).st_mtime_ns
        assert sig  # signature helper stays callable with an empty rule set

    def test_ruleset_signature_change_discards_cache(self, tmp_path):
        write_crypto_module(tmp_path, "leaky.py", BAD_PRINT)
        cache_path = tmp_path / "cache.json"
        lint_paths([tmp_path / "src"], relative_to=tmp_path, cache_path=cache_path)
        data = json.loads(cache_path.read_text())
        data["signature"] = "stale"
        cache_path.write_text(json.dumps(data))
        cache = LintCache(cache_path, ruleset_signature(["SECRET-LEAK"]))
        assert cache.lookup(
            tmp_path / "src" / "repro" / "crypto" / "leaky.py",
            "src/repro/crypto/leaky.py",
        ) is None

    def test_corrupt_cache_file_runs_cold(self, tmp_path):
        write_crypto_module(tmp_path, "leaky.py", BAD_PRINT)
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json")
        findings, _, _ = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path, cache_path=cache
        )
        assert any(f.rule_id == "SECRET-LEAK" for f in findings)

    def test_program_findings_replay_from_cache(self, tmp_path):
        write_crypto_module(
            tmp_path,
            "flows.py",
            "from repro.crypto import kdf\n"
            "\n"
            "def leak(pre, binder):\n"
            "    print(kdf.derive_k2(pre, binder))\n",
        )
        cache = tmp_path / "cache.json"
        cold, _, _ = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path, cache_path=cache
        )
        warm, _, _ = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path, cache_path=cache
        )
        assert [f for f in cold if f.rule_id == "SECRET-FLOW"]
        assert cold == warm

    def test_suppressed_program_finding_stays_suppressed_warm(self, tmp_path):
        write_crypto_module(
            tmp_path,
            "flows.py",
            "from repro.crypto import kdf\n"
            "\n"
            "def leak(pre, binder):\n"
            "    print(kdf.derive_k2(pre, binder))  # argus-lint: disable=SECRET-FLOW\n",
        )
        cache = tmp_path / "cache.json"
        cold, cold_sup, _ = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path, cache_path=cache
        )
        warm, warm_sup, _ = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path, cache_path=cache
        )
        assert not [f for f in cold if f.rule_id == "SECRET-FLOW"]
        assert cold_sup == warm_sup == 1


class TestCacheSpeed:
    def test_warm_run_under_quarter_of_cold(self, tmp_path):
        """Acceptance gate: warm incremental < 25% of cold wall time."""
        src = REPO_ROOT / "src"
        baseline = REPO_ROOT / "lint-baseline.json"
        cache = tmp_path / "cache.json"

        t0 = time.perf_counter()
        cold = run([src], baseline, relative_to=REPO_ROOT, cache_path=cache)
        cold_s = time.perf_counter() - t0
        assert cold.cache_misses > 0 and cold.cache_hits == 0

        t1 = time.perf_counter()
        warm = run([src], baseline, relative_to=REPO_ROOT, cache_path=cache)
        warm_s = time.perf_counter() - t1
        assert warm.cache_hits == cold.cache_misses
        assert warm.cache_misses == 0
        assert [f.fingerprint for f in warm.new] == [f.fingerprint for f in cold.new]

        if cold_s < 0.2:  # pragma: no cover - absurdly fast host
            pytest.skip("cold run too fast to measure a stable ratio")
        assert warm_s < 0.25 * cold_s, (
            f"warm {warm_s:.3f}s vs cold {cold_s:.3f}s "
            f"({warm_s / cold_s:.1%}, gate < 25%)"
        )
