"""PROTO-STATE fixtures: state-machine conformance bad/good pairs."""

import textwrap

from repro.lint.engine import lint_source, lint_sources
from repro.lint.rules import RULES_BY_ID

RULE = [RULES_BY_ID["PROTO-STATE"]]

HANDLER_NAMES = [
    "handle_que1",
    "handle_res1",
    "handle_res1_level1",
    "handle_que2",
    "handle_res2",
    "handle_rque",
    "handle_rres",
]


def engine_source(imports: str = "", helpers: str = "", **bodies: str) -> str:
    """A protocol engine defining every handler; *bodies* override the
    default ``return None`` body of named handlers."""
    lines = [textwrap.dedent(imports).strip(), "", "class Engine:"]
    if helpers:
        lines.append(textwrap.indent(textwrap.dedent(helpers).strip(), "    "))
    for name in HANDLER_NAMES:
        body = textwrap.dedent(bodies.get(name, "return None")).strip()
        lines.append(f"    def {name}(self, msg):")
        lines.append(textwrap.indent(body, "        "))
        lines.append("")
    return "\n".join(lines) + "\n"


def findings(source: str, path: str = "src/repro/protocol/x.py") -> list:
    return [
        f for f in lint_source(source, path, rules=RULE) if f.rule_id == "PROTO-STATE"
    ]


class TestResponseOrdering:
    def test_bad_handler_emits_out_of_order_response(self):
        src = engine_source(
            imports="from repro.protocol.messages import Que2",
            handle_que1='return Que2(kexm=b"x", ciphertext=b"y", mac_s2=b"z")',
        )
        out = findings(src)
        assert any("out of protocol order" in f.message for f in out)

    def test_good_handler_emits_its_spec_response(self):
        src = engine_source(
            imports="from repro.protocol.messages import Que2",
            handle_res1='return Que2(kexm=b"x", ciphertext=b"y", mac_s2=b"z")',
        )
        assert not findings(src)

    def test_batch_variant_inherits_handler_contract(self):
        src = engine_source(
            imports="from repro.protocol.messages import Res2",
            helpers="""
                def handle_rque_batch(self, msgs):
                    return [Res2(r_o=b"r", ciphertext=b"c", mac_o=b"m") for _ in msgs]
            """,
        )
        out = findings(src)
        assert any("out of protocol order" in f.message for f in out)

    def test_non_handler_helpers_may_construct(self):
        src = engine_source(
            imports="from repro.protocol.messages import Que2",
            helpers="""
                def _build_que2(self, kexm, ct, mac):
                    return Que2(kexm=kexm, ciphertext=ct, mac_s2=mac)
            """,
        )
        assert not findings(src)


class TestHandlerExistence:
    def test_bad_constructed_type_without_handler(self):
        src = textwrap.dedent(
            """
            from repro.protocol.messages import Rque

            def start(ticket):
                return Rque(ticket=ticket, r_s=b"r", binder=b"b")
            """
        )
        out = findings(src)
        assert any("handle_rque is not defined" in f.message for f in out)

    def test_good_handler_in_another_protocol_module(self):
        # The whole point of the whole-program pass: the constructor and
        # its handler live in different modules.
        builder = textwrap.dedent(
            """
            from repro.protocol.messages import Rque

            def start(ticket):
                return Rque(ticket=ticket, r_s=b"r", binder=b"b")
            """
        )
        out = [
            f
            for f in lint_sources(
                {
                    "src/repro/protocol/builder.py": builder,
                    "src/repro/protocol/engine2.py": engine_source(),
                },
                rules=RULE,
            )
            if f.rule_id == "PROTO-STATE"
        ]
        assert not out

    def test_non_protocol_modules_are_out_of_scope(self):
        src = textwrap.dedent(
            """
            from repro.protocol.messages import Rque

            def replay(ticket):
                return Rque(ticket=ticket, r_s=b"r", binder=b"b")
            """
        )
        assert not findings(src, path="src/repro/attacks/x.py")


class TestDecoyConstantLength:
    def test_bad_decoy_with_literal_length(self):
        src = engine_source(
            imports="""
                from repro.protocol.messages import Rres
                from repro.crypto.primitives import random_bytes
            """,
            handle_rque='return Rres(r_o=b"r", ciphertext=random_bytes(64), mac_o=b"m")',
        )
        out = findings(src)
        assert any("constant-length" in f.message for f in out)

    def test_good_decoy_calibrated_via_padded_length(self):
        src = engine_source(
            imports="""
                from repro.protocol.messages import Rres
                from repro.crypto import aead
                from repro.crypto.primitives import random_bytes
            """,
            helpers="""
                def padded_payload_length(self):
                    return 96
            """,
            handle_rque="""
                n = aead.ciphertext_length(self.padded_payload_length())
                return Rres(r_o=b"r", ciphertext=random_bytes(n), mac_o=random_bytes(16))
            """,
        )
        assert not findings(src)

    def test_good_decoy_calibrated_through_helper(self):
        src = engine_source(
            imports="""
                from repro.protocol.messages import Rres
                from repro.crypto import aead
                from repro.crypto.primitives import random_bytes
            """,
            helpers="""
                def padded_payload_length(self):
                    return 96

                def _decoy_len(self):
                    return aead.ciphertext_length(self.padded_payload_length())
            """,
            handle_rque=(
                'return Rres(r_o=b"r", ciphertext=random_bytes(self._decoy_len()),'
                ' mac_o=random_bytes(16))'
            ),
        )
        assert not findings(src)

    def test_good_real_ciphertext_is_not_a_decoy(self):
        src = engine_source(
            imports="""
                from repro.protocol.messages import Rres
                from repro.crypto import aead
            """,
            helpers="""
                def respond(self, key, payload):
                    return Rres(r_o=b"r", ciphertext=aead.encrypt(key, payload), mac_o=b"m")
            """,
        )
        assert not findings(src)
