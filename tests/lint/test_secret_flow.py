"""SECRET-FLOW fixtures: interprocedural taint, bad/good pairs.

Mirrors the PR 3 fixture convention (dedented inline sources through
the engine, filtered to one rule) and adds the multi-module entry point
``lint_sources`` for the genuinely cross-module cases the rule exists
for.
"""

import textwrap

from repro.lint.engine import lint_source, lint_sources
from repro.lint.rules import RULES_BY_ID

RULE = [RULES_BY_ID["SECRET-FLOW"]]


def flow_findings(sources: dict[str, str]) -> list:
    dedented = {path: textwrap.dedent(src) for path, src in sources.items()}
    return [
        f for f in lint_sources(dedented, rules=RULE) if f.rule_id == "SECRET-FLOW"
    ]


def single(source: str, path: str = "src/repro/protocol/x.py") -> list:
    return [
        f
        for f in lint_source(textwrap.dedent(source), path, rules=RULE)
        if f.rule_id == "SECRET-FLOW"
    ]


HELPER_MODULE = """
    from repro.crypto import kdf

    def make_session_key(premaster, binder):
        return kdf.derive_k2(premaster, binder)

    def describe(material):
        return stringify(material)

    def stringify(material):
        return "key=%s" % material.hex()
"""


class TestInterproceduralTaint:
    def test_two_module_two_hop_leak_is_caught(self):
        # Source in module A (kdf.derive_k2 behind make_session_key),
        # sink in module B, with the tainted value passing through two
        # helper hops (describe -> stringify) before hitting the log.
        consumer = """
            import logging
            from repro.protocol.helper import make_session_key, describe

            logger = logging.getLogger(__name__)

            def announce(premaster, binder):
                key = make_session_key(premaster, binder)
                logger.info(describe(key))
        """
        findings = flow_findings({
            "src/repro/protocol/helper.py": HELPER_MODULE,
            "src/repro/protocol/consumer.py": consumer,
        })
        assert findings, "cross-module 2-hop leak must be caught"
        assert all(f.path == "src/repro/protocol/consumer.py" for f in findings)
        assert "derive_k2" in findings[0].message

    def test_sanitized_twin_passes(self):
        # Identical shape, but the key is hashed before leaving the
        # sealed path — the sanitizer must stop propagation.
        consumer = """
            import logging
            from repro.protocol.helper import make_session_key, describe
            from repro.crypto.primitives import sha256

            logger = logging.getLogger(__name__)

            def announce(premaster, binder):
                key = make_session_key(premaster, binder)
                logger.info(describe(sha256(key)))
        """
        assert not flow_findings({
            "src/repro/protocol/helper.py": HELPER_MODULE,
            "src/repro/protocol/consumer.py": consumer,
        })

    def test_taint_through_callee_summary_to_sink_in_callee(self):
        # The sink lives inside the helper module; the caller only
        # passes the secret in.  The param-to-sink summary must carry
        # the witness back to the call site.
        sink_helper = """
            import logging

            logger = logging.getLogger(__name__)

            def audit(value):
                logger.warning("saw %r", value)
        """
        caller = """
            from repro.crypto import kdf
            from repro.protocol.sink_helper import audit

            def leak(premaster, binder):
                audit(kdf.derive_k3(premaster, binder))
        """
        findings = flow_findings({
            "src/repro/protocol/sink_helper.py": sink_helper,
            "src/repro/protocol/caller.py": caller,
        })
        assert findings
        assert findings[0].path == "src/repro/protocol/caller.py"
        assert "derive_k3" in findings[0].message
        assert "audit" in findings[0].message


class TestLocalFlows:
    def test_bad_key_in_exception_text(self):
        src = """
            from repro.crypto import kdf

            def check(premaster, binder):
                key = kdf.derive_k2(premaster, binder)
                raise ValueError(f"bad key {key!r}")
        """
        assert single(src)

    def test_bad_key_reaches_wire_constructor_unsealed(self):
        src = """
            from repro.crypto import kdf
            from repro.protocol.messages import Res2

            def respond(premaster, binder, mac):
                key = kdf.derive_k2(premaster, binder)
                return Res2(r_o=b"r", ciphertext=key, mac_o=mac)
        """
        assert single(src)

    def test_good_key_sealed_before_wire(self):
        src = """
            from repro.crypto import aead, kdf
            from repro.protocol.messages import Res2

            def respond(premaster, binder, payload, mac):
                key = kdf.derive_k2(premaster, binder)
                return Res2(r_o=b"r", ciphertext=aead.encrypt(key, payload), mac_o=mac)
        """
        assert not single(src)

    def test_bad_private_der_printed(self):
        src = """
            def debug(session):
                print(session.ecdh.private_der())
        """
        assert single(src)

    def test_good_length_of_secret_is_not_a_leak(self):
        src = """
            from repro.crypto import kdf

            def check(premaster, binder):
                key = kdf.derive_k2(premaster, binder)
                print(len(key))
        """
        assert not single(src)

    def test_suppression_comment_silences_the_flow(self):
        src = """
            from repro.crypto import kdf

            def check(premaster, binder):
                key = kdf.derive_k2(premaster, binder)
                print(key.hex())  # argus-lint: disable=SECRET-FLOW
        """
        assert not single(src)

    def test_out_of_scope_module_not_reported(self):
        src = """
            from repro.crypto import kdf

            def check(premaster, binder):
                key = kdf.derive_k2(premaster, binder)
                print(key.hex())
        """
        assert not single(src, path="src/repro/experiments/x.py")
