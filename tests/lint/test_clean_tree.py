"""Tier-1 gate: the shipped tree is lint-clean with an *empty* baseline.

This is the enforcement half of the tentpole: every invariant rule runs
over ``src/`` exactly as CI's ``argus-repro lint`` does, and any new
finding fails the suite.  The baseline must stay empty — pre-existing
violations were fixed, not grandfathered — so this test also pins that
policy.
"""

import json
from pathlib import Path

from repro.lint.engine import run

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCleanTree:
    def test_src_is_lint_clean(self):
        result = run(
            [REPO_ROOT / "src"],
            REPO_ROOT / "lint-baseline.json",
            relative_to=REPO_ROOT,
        )
        assert result.checked_files > 100  # the whole package was scanned
        rendered = "\n".join(f.render() for f in result.new)
        assert not result.new, f"new lint findings:\n{rendered}"

    def test_shipped_baseline_is_empty(self):
        baseline = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert baseline["findings"] == []

    def test_no_stray_suppressions(self):
        """Suppression comments need a paper trail; the shipped tree has
        none, so any new one shows up in review via this count."""
        result = run(
            [REPO_ROOT / "src"],
            REPO_ROOT / "lint-baseline.json",
            relative_to=REPO_ROOT,
        )
        assert result.suppressed == 0
