"""Per-rule fixtures: one known-bad and one known-good snippet per rule.

Snippets are linted as if they lived at a synthetic path, because every
rule scopes itself by package (``repro.crypto`` vs ``repro.net`` …) —
the same source must fire inside a scoped package and stay silent
outside it.
"""

import textwrap

import pytest

from repro.lint.engine import lint_source
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def findings(source: str, path: str, rule_id: str | None = None):
    rules = [RULES_BY_ID[rule_id]] if rule_id else None
    return lint_source(textwrap.dedent(source), path, rules=rules)


class TestCtCompare:
    BAD = """
        def check(expected_mac, que2):
            if expected_mac == que2.mac_s2:
                return True
            return False
    """

    def test_bad_equality_on_mac(self):
        hits = findings(self.BAD, "src/repro/protocol/verify.py", "CT-COMPARE")
        assert len(hits) == 1
        assert hits[0].rule_id == "CT-COMPARE"
        assert "constant_time_equal" in hits[0].message

    def test_not_equal_also_fires(self):
        src = """
            def check(tag, expected):
                return tag != expected
        """
        assert findings(src, "src/repro/crypto/x.py", "CT-COMPARE")

    def test_good_constant_time_call(self):
        src = """
            from repro.crypto.primitives import constant_time_equal

            def check(expected_mac, que2):
                return constant_time_equal(expected_mac, que2.mac_s2)
        """
        assert not findings(src, "src/repro/protocol/verify.py", "CT-COMPARE")

    def test_length_checks_are_fine(self):
        src = """
            MAC_LEN = 32

            def check(tag):
                return len(tag) == MAC_LEN
        """
        assert not findings(src, "src/repro/crypto/x.py", "CT-COMPARE")

    def test_out_of_scope_package_ignored(self):
        assert not findings(self.BAD, "src/repro/net/verify.py", "CT-COMPARE")


class TestCryptoRand:
    BAD = """
        import random

        def nonce():
            return random.randbytes(28)
    """

    def test_bad_import_in_crypto(self):
        hits = findings(self.BAD, "src/repro/crypto/noise.py", "CRYPTO-RAND")
        assert len(hits) == 1
        assert "secrets" in hits[0].message

    def test_from_import_fires(self):
        src = "from random import randbytes\n"
        assert findings(src, "src/repro/pki/x.py", "CRYPTO-RAND")

    def test_good_csprng(self):
        src = """
            import os
            import secrets

            def nonce():
                return os.urandom(28) + secrets.token_bytes(4)
        """
        assert not findings(src, "src/repro/crypto/noise.py", "CRYPTO-RAND")

    def test_simulation_packages_keep_seeded_random(self):
        assert not findings(self.BAD, "src/repro/net/jitter.py", "CRYPTO-RAND")
        assert not findings(self.BAD, "src/repro/backend/churn.py", "CRYPTO-RAND")


class TestSecretLeak:
    BAD_PRINT = """
        def debug(session_key):
            print("established", session_key)
    """

    def test_bad_print(self):
        hits = findings(self.BAD_PRINT, "src/repro/protocol/x.py", "SECRET-LEAK")
        assert len(hits) == 1
        assert "session_key" in hits[0].message

    def test_bad_fstring_exception(self):
        src = """
            def fail(master):
                raise ValueError(f"bad resumption master {master!r}")
        """
        assert findings(src, "src/repro/protocol/x.py", "SECRET-LEAK")

    def test_bad_repr(self):
        src = """
            class Session:
                def __repr__(self):
                    return f"Session(key={self._key})"
        """
        assert findings(src, "src/repro/protocol/x.py", "SECRET-LEAK")

    def test_bad_logging(self):
        src = """
            import logging
            logger = logging.getLogger(__name__)

            def note(ticket):
                logger.info(ticket)
        """
        assert findings(src, "src/repro/access/x.py", "SECRET-LEAK")

    def test_good_lengths_and_constants(self):
        src = """
            TICKET_BODY_LEN = 224

            def fail(ticket, peer_id):
                raise ValueError(
                    f"ticket of {len(ticket)} B from {peer_id} exceeds {TICKET_BODY_LEN}"
                )
        """
        assert not findings(src, "src/repro/protocol/x.py", "SECRET-LEAK")

    def test_out_of_scope_package_ignored(self):
        assert not findings(self.BAD_PRINT, "src/repro/experiments/x.py", "SECRET-LEAK")


class TestMeterAccounting:
    BAD = """
        from cryptography.hazmat.primitives.asymmetric import ec

        def raw_sign(key, msg):
            return key.sign(msg, ec.ECDSA(None))
    """

    def test_bad_hazmat_outside_crypto(self):
        hits = findings(self.BAD, "src/repro/protocol/fast.py", "METER-ACCOUNTING")
        assert len(hits) == 1
        assert "metered wrappers" in hits[0].message

    def test_bad_hashlib_outside_crypto(self):
        src = "import hashlib\n"
        assert findings(src, "src/repro/backend/x.py", "METER-ACCOUNTING")

    def test_good_inside_crypto_package(self):
        assert not findings(self.BAD, "src/repro/crypto/fast.py", "METER-ACCOUNTING")

    def test_good_metered_wrapper_use(self):
        src = """
            from repro.crypto.primitives import hmac_sha256, sha256

            def digest(data):
                return sha256(data)
        """
        assert not findings(src, "src/repro/protocol/x.py", "METER-ACCOUNTING")


class TestIndistReturn:
    BAD = """
        class Engine:
            # lint: indistinguishable
            def respond(self, matched_group, keys, profile):
                if matched_group is None:
                    return None
                payload = self._frame_payload(profile)
                return payload
    """

    def test_bad_early_return_under_membership_branch(self):
        hits = findings(self.BAD, "src/repro/protocol/object.py", "INDIST-RETURN")
        assert len(hits) == 1
        assert "matched_group" in hits[0].message

    def test_good_restructured_single_exit(self):
        src = """
            class Engine:
                # lint: indistinguishable
                def respond(self, matched_group, keys, profile):
                    if matched_group is not None:
                        payload = self.covert
                    else:
                        payload = profile
                    if payload is None:
                        return None
                    return self._frame_payload(payload)
        """
        assert not findings(src, "src/repro/protocol/object.py", "INDIST-RETURN")

    def test_unmarked_function_not_checked(self):
        src = self.BAD.replace("# lint: indistinguishable", "")
        assert not findings(src, "src/repro/protocol/object.py", "INDIST-RETURN")

    def test_exit_after_padding_is_legal(self):
        src = """
            class Engine:
                # lint: indistinguishable
                def respond(self, matched_group, profile):
                    framed = self._frame_payload(profile)
                    if matched_group is not None and not framed:
                        raise RuntimeError("unreachable")
                    return framed
        """
        assert not findings(src, "src/repro/protocol/object.py", "INDIST-RETURN")


class TestNonceReuse:
    def test_bad_constant_iv(self):
        src = """
            from cryptography.hazmat.primitives.ciphers import modes

            def seal(data):
                return modes.CBC(b"\\x00" * 16)
        """
        hits = findings(src, "src/repro/crypto/x.py", "NONCE-REUSE")
        assert len(hits) == 1
        assert "constant nonce" in hits[0].message

    def test_bad_loop_invariant_nonce(self):
        src = """
            def seal_all(aead, key, messages, fresh):
                nonce = fresh()
                out = []
                for message in messages:
                    out.append(aead.encrypt(key, message, nonce=nonce))
                return out
        """
        hits = findings(src, "src/repro/crypto/x.py", "NONCE-REUSE")
        assert len(hits) == 1
        assert "loop" in hits[0].message

    def test_good_fresh_nonce_per_iteration(self):
        src = """
            def seal_all(aead, key, messages, fresh):
                out = []
                for message in messages:
                    nonce = fresh()
                    out.append(aead.encrypt(key, message, nonce=nonce))
                return out
        """
        assert not findings(src, "src/repro/crypto/x.py", "NONCE-REUSE")

    def test_good_random_iv_expression(self):
        src = """
            from cryptography.hazmat.primitives.ciphers import modes
            from repro.crypto.primitives import random_bytes

            def seal(data):
                iv = random_bytes(16)
                return modes.CBC(iv)
        """
        assert not findings(src, "src/repro/crypto/x.py", "NONCE-REUSE")


class TestRuleCatalogue:
    def test_nine_argus_rules_registered(self):
        ids = {rule.RULE_ID for rule in ALL_RULES}
        assert ids == {
            "CT-COMPARE",
            "CRYPTO-RAND",
            "SECRET-LEAK",
            "METER-ACCOUNTING",
            "INDIST-RETURN",
            "NONCE-REUSE",
            "SECRET-FLOW",
            "PROTO-STATE",
            "POOL-SAFETY",
        }

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.RULE_ID)
    def test_every_rule_has_id_and_summary(self, rule):
        assert rule.RULE_ID and rule.SUMMARY
