"""Replay/freshness attacks and the v2-vs-v3 structural distinguisher."""

import pytest

from repro.attacks.channel import run_exchange
from repro.attacks.distinguisher import classify_subject, subject_advantage
from repro.attacks.replay import replay_attack
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version


class TestReplay:
    def test_all_replays_rejected(self, staff, media):
        target = ObjectEngine(media)
        subject = SubjectEngine(staff)
        capture = run_exchange(subject, target)
        assert capture.outcome is not None
        result = replay_attack(capture, target, staff.subject_id)
        assert not result.replayed_que1_answered
        assert not result.replayed_que2_answered
        assert not result.spliced_que2_answered

    def test_replay_against_level3_object(self, fellow, kiosk):
        target = ObjectEngine(kiosk)
        subject = SubjectEngine(fellow)
        capture = run_exchange(subject, target)
        result = replay_attack(capture, target, fellow.subject_id)
        assert not result.spliced_que2_answered

    def test_fresh_round_after_replay_still_works(self, staff, media):
        """Replay defence must not brick the object for honest users."""
        target = ObjectEngine(media)
        capture = run_exchange(SubjectEngine(staff), target)
        replay_attack(capture, target, staff.subject_id)
        fresh = run_exchange(SubjectEngine(staff), target)
        assert fresh.outcome is not None


class TestDistinguisherVerdicts:
    def test_v2_fellow_flagged(self, fellow, kiosk):
        capture = run_exchange(SubjectEngine(fellow, Version.V2_0),
                               ObjectEngine(kiosk, Version.V2_0))
        assert classify_subject(capture).subject_seeking_level3 is True

    def test_v2_plain_subject_not_flagged(self, staff, media):
        capture = run_exchange(SubjectEngine(staff, Version.V2_0),
                               ObjectEngine(media, Version.V2_0))
        assert classify_subject(capture).subject_seeking_level3 is False

    def test_v3_everyone_flagged_hence_no_signal(self, staff, fellow, media, kiosk):
        for creds, obj in ((staff, media), (fellow, kiosk)):
            capture = run_exchange(SubjectEngine(creds, Version.V3_0),
                                   ObjectEngine(obj, Version.V3_0))
            assert classify_subject(capture).subject_seeking_level3 is True

    def test_no_capture_is_unknown(self):
        from repro.attacks.channel import CapturedExchange
        assert classify_subject(CapturedExchange()).subject_seeking_level3 is None

    def test_advantage_requires_both_populations(self):
        with pytest.raises(ValueError):
            subject_advantage([], [])


class TestLevel1ReplaySemantics:
    def test_replayed_level1_profile_is_harmless(self, staff, thermometer):
        """A replayed Level 1 RES1 carries a GENUINE admin-signed public
        profile: accepting it re-learns true public information — there
        is no integrity or secrecy violation to prevent (the paper signs
        Level 1 PROFs for integrity only)."""
        from repro.attacks.channel import run_exchange
        from repro.protocol.object import ObjectEngine
        from repro.protocol.subject import SubjectEngine

        capture = run_exchange(SubjectEngine(staff), ObjectEngine(thermometer))
        # the attacker replays the captured RES1 to a different subject
        other = SubjectEngine(staff)
        other.start_round()
        service = other.handle_res1_level1(capture.res1, "thermo-1")
        assert service is not None
        assert service.profile.verify(staff.admin_public)  # still genuine

    def test_forged_level1_profile_still_rejected(self, staff, thermometer):
        """What replay does NOT allow: modifying the replayed profile."""
        from repro.attacks.channel import run_exchange
        from repro.protocol.messages import Res1Level1
        from repro.protocol.object import ObjectEngine
        from repro.protocol.subject import SubjectEngine

        capture = run_exchange(SubjectEngine(staff), ObjectEngine(thermometer))
        forged = Res1Level1(
            capture.res1.profile_bytes.replace(b"read_temperature", b"xead_temperature")
        )
        victim = SubjectEngine(staff)
        victim.start_round()
        assert victim.handle_res1_level1(forged, "thermo-1") is None
