"""§VII Cases 2, 4, 6, 8: active impersonation attacks."""

import pytest

from repro.attacks.channel import run_exchange
from repro.attacks.impostor import EliminationProbe, ObjectImpostor, SubjectImpostor
from repro.protocol.errors import AuthenticationError
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


class TestCase2SubjectImpostor:
    def test_forged_chain_rejected_by_object(self, backend, media):
        impostor = SubjectImpostor(trust_root=backend.admin_public)
        target = ObjectEngine(media)
        capture = impostor.attack(target)
        assert capture.outcome is None
        assert capture.res2 is None
        assert any(isinstance(e, AuthenticationError) for e in target.errors)

    def test_impostor_without_real_root_aborts_early(self, media):
        """Distrusting the real root, she can't even get past RES1."""
        impostor = SubjectImpostor()
        capture = impostor.attack(ObjectEngine(media))
        assert capture.que2 is None


class TestCase2ObjectImpostor:
    def test_fake_object_rejected_by_subject(self, staff):
        victim = SubjectEngine(staff)
        impostor = ObjectImpostor()
        capture = impostor.attack(victim)
        assert capture.outcome is None
        assert any(isinstance(e, AuthenticationError) for e in victim.errors)

    def test_fake_profile_never_recorded(self, staff):
        victim = SubjectEngine(staff)
        ObjectImpostor().attack(victim)
        assert victim.discovered == []


class TestCase4Level3Impostor:
    def test_impostor_never_reaches_covert_variant(self, backend, kiosk):
        impostor = SubjectImpostor(trust_root=backend.admin_public)
        capture = impostor.attack(ObjectEngine(kiosk))
        assert capture.outcome is None

    def test_valid_subject_without_group_key_gets_level2_only(self, backend, kiosk):
        """Even a REGISTERED subject without the group key can only ever
        see the kiosk's Level 2 face."""
        insider = backend.register_subject("case4-insider", {"position": "staff"})
        capture = run_exchange(SubjectEngine(insider), ObjectEngine(kiosk))
        assert capture.outcome.level_seen == 2
        assert "flyer" not in " ".join(capture.outcome.functions)


class TestCase6FellowProbing:
    def test_nonfellow_probe_learns_nothing(self, backend, fellow, kiosk):
        """A rogue object without the group key cannot extract the
        subject's sensitive attributes: her MAC_S3 is opaque."""
        rogue = backend.register_object(
            "rogue-obj", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("true", ("play",))],
        )
        subject = SubjectEngine(fellow)
        capture = run_exchange(subject, ObjectEngine(rogue))
        # the exchange even succeeds at Level 2 — but nothing in the rogue's
        # view verifies against any group key it could hold
        assert capture.outcome.level_seen == 2
        assert capture.que2.mac_s3 is not None  # present but useless to it


class TestCase8EliminationTrick:
    def test_probe_classifies_everything_level2(self, backend, media, kiosk):
        """Double-faced role: the insider probe sees MAC_{O,2} everywhere,
        so 'not MAC_{O,2} => Level 3' never fires."""
        probe = EliminationProbe(backend, probe_id="case8-probe")
        assert probe.classify(ObjectEngine(kiosk)) == 2
        assert probe.classify(ObjectEngine(media)) == 2

    def test_probe_cannot_tell_kiosk_from_media(self, backend):
        kiosk2 = backend.register_object(
            "case8-kiosk", {"type": "kiosk"}, level=3, functions=("mag",),
            variants=[("true", ("mag",))],
            covert_functions={"sensitive:serves-support": ("flyer",)},
        )
        media2 = backend.register_object(
            "case8-media", {"type": "multimedia"}, level=2, functions=("mag",),
            variants=[("true", ("mag",))],
        )
        probe = EliminationProbe(backend, probe_id="case8-probe2")
        verdicts = {probe.classify(ObjectEngine(kiosk2)),
                    probe.classify(ObjectEngine(media2))}
        assert verdicts == {2}
