"""§VII-D: consequences of key compromise are bounded."""

import pytest

from repro.attacks.compromise import (
    probe_fellows_with_stolen_keys,
    session_key_blast_radius,
)
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


@pytest.fixture(scope="module")
def world(backend):
    """Two secret groups, two kiosks each serving one, plus plain media."""
    backend.add_sensitive_policy("sensitive:g-b", "sensitive:serves-g-b")
    fellow_a = backend.register_subject(
        "comp-sam", {"position": "student"}, ("sensitive:needs-support",)
    )
    kiosk_a = backend.register_object(
        "comp-kiosk-a", {"type": "kiosk"}, level=3, functions=("mag",),
        variants=[("true", ("mag",))],
        covert_functions={"sensitive:serves-support": ("flyer-a",)},
    )
    kiosk_b = backend.register_object(
        "comp-kiosk-b", {"type": "kiosk"}, level=3, functions=("mag",),
        variants=[("true", ("mag",))],
        covert_functions={"sensitive:serves-g-b": ("flyer-b",)},
    )
    media = backend.register_object(
        "comp-media", {"type": "multimedia"}, level=2, functions=("play",),
        variants=[("true", ("play",))],
    )
    return fellow_a, kiosk_a, kiosk_b, media


class TestGroupKeyCompromise:
    def test_only_stolen_group_exposed(self, world):
        """Private key + group key of group A: attacker enumerates group A's
        object fellows one by one — and ONLY them."""
        fellow_a, kiosk_a, kiosk_b, media = world
        group_id = next(iter(fellow_a.group_keys))
        engines = {
            c.object_id: ObjectEngine(c) for c in (kiosk_a, kiosk_b, media)
        }
        findings = probe_fellows_with_stolen_keys(
            backend=None, stolen_creds=fellow_a, stolen_group_id=group_id,
            object_engines=engines,
        )
        assert findings.identified_fellows == ["comp-kiosk-a"]


class TestSessionKeyCompromise:
    def test_blast_radius_is_one_session(self, world, backend):
        fellow_a, kiosk_a, kiosk_b, media = world
        user = backend.register_subject("comp-user", {"position": "staff"})
        subject = SubjectEngine(user)
        objects = {
            c.object_id: ObjectEngine(c) for c in (kiosk_a, kiosk_b, media)
        }
        findings = session_key_blast_radius(subject, objects, "comp-media")
        assert findings.decrypted_sessions == ["comp-media"]
