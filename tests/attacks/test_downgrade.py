"""Downgrade attacks: forcing a Level 3 discovery down to Level 2.

A man-in-the-middle who strips or corrupts MAC_{S,3} makes the object
see a non-fellow and serve its Level 2 face. The transcript design must
make this *detectable*: the object's MAC_{O,X} covers the QUE2 MACs it
actually received, while the subject verifies against the MACs she
actually sent — any tampering desynchronizes them and the subject
rejects RES2 instead of silently accepting the downgraded service.
"""

import pytest

from repro.attacks.channel import run_exchange
from repro.protocol.errors import AuthenticationError
from repro.protocol.messages import Que2
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


def _strip_mac3(name, message):
    if name == "que2":
        return Que2(message.profile_bytes, message.cert_chain_bytes,
                    message.kexm, message.signature, message.mac_s2, None)
    return message


def _corrupt_mac3(name, message):
    if name == "que2" and message.mac_s3 is not None:
        return Que2(message.profile_bytes, message.cert_chain_bytes,
                    message.kexm, message.signature, message.mac_s2,
                    b"\x00" * 32)
    return message


def _swap_macs(name, message):
    if name == "que2" and message.mac_s3 is not None:
        return Que2(message.profile_bytes, message.cert_chain_bytes,
                    message.kexm, message.signature, message.mac_s3,
                    message.mac_s2)
    return message


class TestDowngradeDetection:
    def test_stripped_mac3_detected_by_subject(self, fellow, kiosk):
        """MITM strips MAC_S3: the kiosk answers with its Level 2 face,
        but the subject's transcript check catches the mismatch."""
        subject = SubjectEngine(fellow)
        capture = run_exchange(subject, ObjectEngine(kiosk), tamper=_strip_mac3)
        assert capture.outcome is None
        assert any(isinstance(e, AuthenticationError) for e in subject.errors)

    def test_corrupted_mac3_detected_by_subject(self, fellow, kiosk):
        subject = SubjectEngine(fellow)
        capture = run_exchange(subject, ObjectEngine(kiosk), tamper=_corrupt_mac3)
        assert capture.outcome is None

    def test_swapped_macs_rejected_by_object(self, fellow, kiosk):
        """Swapping MAC_S2/MAC_S3 invalidates MAC_S2: silence."""
        obj = ObjectEngine(kiosk)
        capture = run_exchange(SubjectEngine(fellow), obj, tamper=_swap_macs)
        assert capture.res2 is None
        assert any(isinstance(e, AuthenticationError) for e in obj.errors)

    def test_no_false_positives_on_honest_level2(self, staff, media):
        """The downgrade detection must not break honest Level 2 flows
        where the subject's K3 simply never matches anything."""
        capture = run_exchange(SubjectEngine(staff), ObjectEngine(media))
        assert capture.outcome is not None
        assert capture.outcome.level_seen == 2

    def test_fellow_on_level2_object_is_not_a_downgrade(self, backend, media):
        """A real Level 2 object serving a fellow is legitimate (not an
        attack): her MAC_S3 is present, unverifiable by design, and both
        transcripts agree."""
        staff_fellow = backend.register_subject(
            "dg-fellow", {"position": "staff"},
            sensitive_attributes=("sensitive:needs-support",),
        )
        capture = run_exchange(SubjectEngine(staff_fellow), ObjectEngine(media))
        assert capture.outcome is not None
        assert capture.outcome.level_seen == 2
