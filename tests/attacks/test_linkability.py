"""§XI: Argus is linkable by design — and only linkable, nothing more."""

from repro.attacks.channel import run_exchange
from repro.attacks.linkability import (
    link_sessions,
    linkability_rate,
    sensitive_exposure,
)
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


def _collect(creds_list, object_creds_list):
    captures = []
    engines = {c.object_id: ObjectEngine(c) for c in object_creds_list}
    for creds in creds_list:
        for object_id, engine in engines.items():
            subject = SubjectEngine(creds)
            captures.append((run_exchange(subject, engine), object_id))
    return captures


class TestLinkability:
    def test_every_session_is_linkable(self, staff, manager, media, kiosk):
        """The §XI non-goal: a passive observer attributes every phase-2
        exchange to a named subject."""
        captures = _collect([staff, manager], [media, kiosk])
        assert linkability_rate(captures) == 1.0

    def test_dossier_tracks_movements(self, staff, media, kiosk):
        captures = _collect([staff], [media, kiosk])
        dossiers = link_sessions(captures)
        dossier = dossiers[staff.subject_id]
        assert dossier.session_count == 2
        assert dossier.objects_contacted == {"media-1", "kiosk-1"}

    def test_dossier_reveals_nonsensitive_attributes(self, staff, media):
        captures = _collect([staff], [media])
        dossier = link_sessions(captures)[staff.subject_id]
        assert dossier.attributes.get("position") == "staff"

    def test_but_never_sensitive_attributes(self, fellow, kiosk):
        """The boundary the paper defends: even the secret-group member's
        dossier contains zero sensitive attributes — her covert life is
        invisible even to an observer who tracks her everywhere."""
        captures = _collect([fellow], [kiosk])
        dossiers = link_sessions(captures)
        exposure = sensitive_exposure(dossiers)
        assert exposure[fellow.subject_id] == []

    def test_level1_exchanges_not_linkable(self, staff, thermometer):
        """Level 1 discovery has no QUE2: nothing names the subject."""
        captures = _collect([staff], [thermometer])
        assert linkability_rate(captures) == 0.0
        assert link_sessions(captures) == {}
