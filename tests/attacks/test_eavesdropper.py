"""§VII Cases 1, 3, 5: passive attacks on secrecy."""

import pytest

from repro.attacks.channel import run_exchange
from repro.attacks.eavesdropper import Eavesdropper
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


@pytest.fixture
def level2_capture(staff, media):
    subject = SubjectEngine(staff)
    capture = run_exchange(subject, ObjectEngine(media))
    assert capture.outcome is not None
    return subject, capture


@pytest.fixture
def level3_capture(fellow, kiosk):
    subject = SubjectEngine(fellow)
    capture = run_exchange(subject, ObjectEngine(kiosk))
    assert capture.outcome.level_seen == 3
    return subject, capture


class TestCase1Level2Secrecy:
    def test_ciphertext_opaque_without_key(self, level2_capture):
        _, capture = level2_capture
        assert Eavesdropper.try_decrypt_res2(capture, b"\x00" * 32) is None

    def test_many_wrong_keys_fail(self, level2_capture):
        _, capture = level2_capture
        for i in range(16):
            assert Eavesdropper.try_decrypt_res2(capture, bytes([i]) * 32) is None

    def test_profile_not_in_plaintext_on_wire(self, level2_capture):
        """The PROF variant's function names must never appear in any
        captured frame — encryption actually covers the payload."""
        _, capture = level2_capture
        wire = b"".join(capture.wire_bytes().values())
        assert b"play" not in wire

    def test_true_session_key_opens_exactly_that_session(self, level2_capture):
        """§VII-D: session-key compromise exposes only that session."""
        subject, capture = level2_capture
        k2 = subject._sessions["media-1"].keys.k2
        profile = Eavesdropper.try_decrypt_res2(capture, k2)
        assert profile is not None and profile.entity_id == "media-1"


class TestCase3Level3Secrecy:
    def test_covert_payload_opaque(self, level3_capture):
        _, capture = level3_capture
        assert Eavesdropper.try_decrypt_res2(capture, b"\x01" * 32) is None

    def test_k2_alone_insufficient_for_level3_payload(self, level3_capture):
        """The covert variant is encrypted under K3; even the session's
        own K2 cannot open it (K3 needs the group key too)."""
        subject, capture = level3_capture
        k2 = subject._sessions["kiosk-1"].keys.k2
        assert Eavesdropper.try_decrypt_res2(capture, k2) is None

    def test_covert_functions_not_on_wire(self, level3_capture):
        _, capture = level3_capture
        wire = b"".join(capture.wire_bytes().values())
        assert b"dispense_support_flyer" not in wire


class TestCase5SensitiveAttributeSecrecy:
    def test_group_check_needs_both_keys(self, level3_capture, backend, fellow):
        subject, capture = level3_capture
        group_id = next(iter(fellow.group_keys))
        true_group_key = fellow.group_keys[group_id]
        true_k2 = subject._sessions["kiosk-1"].keys.k2

        # group key alone (wrong K2): no
        assert not Eavesdropper.test_group_membership(
            capture, b"\x00" * 32, true_group_key
        )
        # K2 alone (wrong group key): no
        assert not Eavesdropper.test_group_membership(
            capture, true_k2, b"\x00" * 32
        )
        # both: the §VII-D bounded compromise case — yes
        assert Eavesdropper.test_group_membership(capture, true_k2, true_group_key)

    def test_coverup_user_indistinguishable_from_member(self, staff, media, backend):
        """A cover-up MAC_S3 verifies under NO group key the attacker can
        ever hold — so 'every subject looks like a member'."""
        subject = SubjectEngine(staff)
        capture = run_exchange(subject, ObjectEngine(media))
        k2 = subject._sessions["media-1"].keys.k2
        for group in backend.groups.groups.values():
            assert not Eavesdropper.test_group_membership(capture, k2, group.key)
