"""§VII Case 9: timing side channel against Level 3 objects."""

import pytest

from repro.attacks.timing import collect_observations
from repro.crypto.costmodel import RASPBERRY_PI3
from repro.net.radio import LinkModel


class TestTimingAttack:
    def test_hmac_delta_is_sub_millisecond(self):
        """The raw signal: one extra HMAC verification on a Pi ~0.08 ms —
        exactly what the paper says cannot be detected."""
        assert RASPBERRY_PI3.hmac_ms < 0.1

    def test_indistinguishable_under_jitter(self):
        """With realistic wireless jitter the best threshold classifier
        cannot reliably separate Level 2 from Level 3 objects."""
        obs = collect_observations(runs=8, n_objects=3)
        accuracy = obs.classifier_accuracy()
        assert accuracy < 0.7, f"timing attack works: accuracy={accuracy:.2f}"

    def test_mean_gap_buried_in_jitter(self):
        obs = collect_observations(runs=8, n_objects=3)
        import statistics

        jitter_spread_ms = statistics.pstdev(obs.level2_latencies) * 1000
        assert obs.mean_gap_ms() < jitter_spread_ms

    def test_jitterless_link_would_leak(self):
        """Sanity check of the attack harness itself: with NO jitter the
        deterministic simulator makes the (tiny) systematic differences
        separable — i.e., the defence really is the noise floor, and the
        harness can detect differences when they exist."""
        quiet = LinkModel(jitter_fraction=0.0)
        obs = collect_observations(runs=2, n_objects=3, link=quiet)
        # deterministic timing: distributions are near-degenerate, and
        # classifier accuracy is either ~1.0 (separable) or 0.5 (identical)
        assert obs.classifier_accuracy() >= 0.5
