"""Secret groups: keys, cover-up keys, rekey overhead (gamma - 1)."""

import pytest

from repro.backend.groups import GROUP_KEY_LEN, GroupError, GroupManager


@pytest.fixture
def manager():
    return GroupManager()


class TestGroups:
    def test_create_and_lookup(self, manager):
        group = manager.create_group("sensitive:a", "sensitive:serves-a")
        assert manager.group_for_attributes("sensitive:a", "sensitive:serves-a") is group
        assert manager.group_for_attributes("sensitive:x", "sensitive:y") is None

    def test_fellows_share_one_key(self, manager):
        group = manager.create_group("sensitive:a", "sensitive:serves-a")
        k1 = manager.enroll_subject(group.group_id, "sam")
        k2 = manager.enroll_object(group.group_id, "kiosk")
        assert k1 == k2
        assert len(k1) == GROUP_KEY_LEN

    def test_distinct_groups_distinct_keys(self, manager):
        g1 = manager.create_group("sensitive:a", "sensitive:sa")
        g2 = manager.create_group("sensitive:b", "sensitive:sb")
        assert g1.key != g2.key

    def test_membership_queries(self, manager):
        group = manager.create_group("sensitive:a", "sensitive:sa")
        manager.enroll_subject(group.group_id, "sam")
        manager.enroll_object(group.group_id, "kiosk")
        assert [g.group_id for g in manager.groups_of_subject("sam")] == [group.group_id]
        assert [g.group_id for g in manager.groups_of_object("kiosk")] == [group.group_id]
        assert manager.groups_of_subject("kiosk") == []

    def test_size_is_gamma(self, manager):
        group = manager.create_group("sensitive:a", "sensitive:sa")
        for i in range(4):
            manager.enroll_subject(group.group_id, f"s{i}")
        manager.enroll_object(group.group_id, "o1")
        assert group.size == 5

    def test_unknown_group_rejected(self, manager):
        with pytest.raises(GroupError):
            manager.enroll_subject("ghost", "sam")


class TestCoverupKeys:
    def test_unique_per_subject(self, manager):
        assert manager.coverup_key("a") != manager.coverup_key("b")

    def test_stable_per_subject(self, manager):
        assert manager.coverup_key("a") == manager.coverup_key("a")

    def test_distinct_from_group_keys(self, manager):
        group = manager.create_group("sensitive:a", "sensitive:sa")
        assert manager.coverup_key("sam") != group.key


class TestRekey:
    def test_remove_rekeys_group(self, manager):
        group = manager.create_group("sensitive:a", "sensitive:sa")
        for i in range(3):
            manager.enroll_subject(group.group_id, f"s{i}")
        manager.enroll_object(group.group_id, "o1")
        old_key = group.key
        report = manager.remove_member(group.group_id, "s0")
        assert group.key != old_key
        assert group.key_version == 2
        assert "s0" not in group.subject_members

    def test_overhead_is_gamma_minus_one(self, manager):
        """§VIII: 'the overhead is (gamma - 1)'."""
        group = manager.create_group("sensitive:a", "sensitive:sa")
        for i in range(5):
            manager.enroll_subject(group.group_id, f"s{i}")
        manager.enroll_object(group.group_id, "o1")
        gamma = group.size
        report = manager.remove_member(group.group_id, "s0")
        assert report.overhead == gamma - 1

    def test_remove_nonmember_rejected(self, manager):
        group = manager.create_group("sensitive:a", "sensitive:sa")
        with pytest.raises(GroupError):
            manager.remove_member(group.group_id, "ghost")

    def test_remove_everywhere(self, manager):
        g1 = manager.create_group("sensitive:a", "sensitive:sa")
        g2 = manager.create_group("sensitive:b", "sensitive:sb")
        manager.enroll_subject(g1.group_id, "sam")
        manager.enroll_subject(g2.group_id, "sam")
        manager.enroll_subject(g2.group_id, "pat")
        reports = manager.remove_everywhere("sam")
        assert len(reports) == 2
        assert "sam" not in g1.subject_members
        assert "sam" not in g2.subject_members
        assert "pat" in g2.subject_members


class _NoScanDict(dict):
    """A groups table that forbids full-table iteration.

    Keyed access stays legal; anything that would walk every group
    (the pre-index linear scans) blows up the test.
    """

    def __iter__(self):
        raise AssertionError("full scan over groups table")

    def keys(self):
        raise AssertionError("full scan over groups table")

    def values(self):
        raise AssertionError("full scan over groups table")

    def items(self):
        raise AssertionError("full scan over groups table")


class TestInvertedIndex:
    """Regression: membership queries must never iterate all groups."""

    @pytest.fixture
    def indexed_manager(self):
        manager = GroupManager()
        for i in range(8):
            group = manager.create_group(f"sensitive:a{i}", f"sensitive:sa{i}")
            manager.enroll_subject(group.group_id, "sam")
            manager.enroll_subject(group.group_id, f"peer{i}")
            manager.enroll_object(group.group_id, f"kiosk{i}")
        manager.groups = _NoScanDict(manager.groups)
        return manager

    def test_groups_of_subject_uses_index(self, indexed_manager):
        found = indexed_manager.groups_of_subject("sam")
        assert len(found) == 8

    def test_groups_of_object_uses_index(self, indexed_manager):
        assert len(indexed_manager.groups_of_object("kiosk3")) == 1

    def test_remove_everywhere_uses_index(self, indexed_manager):
        reports = indexed_manager.remove_everywhere("sam")
        assert len(reports) == 8
        assert indexed_manager.groups_of_subject("sam") == []

    def test_attribute_lookup_uses_index(self, indexed_manager):
        group = indexed_manager.group_for_attributes("sensitive:a2", "sensitive:sa2")
        assert group is not None
        assert len(indexed_manager.groups_for_subject_attribute("sensitive:a2")) == 1
        assert len(indexed_manager.groups_for_object_attribute("sensitive:sa2")) == 1
