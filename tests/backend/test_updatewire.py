"""The update plane: signed revocations, ECIES-wrapped rekeys."""

import pytest

from repro.backend import Backend
from repro.backend.updatewire import (
    UpdateMessage,
    UpdatePublisher,
    UpdateReceiver,
    UpdateWireError,
    push_group_rekey,
    push_revocation,
)
from repro.crypto.ecdsa import generate_signing_key
from repro.protocol import ObjectEngine, SubjectEngine
from repro.protocol.discovery import run_round


@pytest.fixture
def world():
    backend = Backend()
    backend.add_sensitive_policy("sensitive:s", "sensitive:serves-s")
    backend.add_policy("p", "position=='staff'", "type=='multimedia'")
    alice = backend.register_subject("alice", {"position": "staff"})
    sam = backend.register_subject("sam", {"position": "staff"}, ("sensitive:s",))
    media = backend.register_object(
        "media", {"type": "multimedia"}, level=2, functions=("play",),
        variants=[("position=='staff'", ("play",))],
    )
    kiosk = backend.register_object(
        "kiosk", {"type": "kiosk"}, level=3, functions=("mag",),
        variants=[("true", ("mag",))],
        covert_functions={"sensitive:serves-s": ("flyer",)},
    )
    return backend, alice, sam, media, kiosk


class TestMessageFormat:
    def test_roundtrip(self, world):
        backend, *_ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("media", "alice")
        restored = UpdateMessage.from_bytes(message.to_bytes())
        assert restored == message

    def test_garbage_rejected(self):
        with pytest.raises(UpdateWireError):
            UpdateMessage.from_bytes(b"\x20\x00")

    def test_sequence_increments(self, world):
        backend, *_ = world
        publisher = UpdatePublisher(backend.root_key)
        a = publisher.revoke_subject("media", "x")
        b = publisher.revoke_subject("media", "y")
        assert b.sequence == a.sequence + 1


class TestRevocationPush:
    def test_applies_and_blocks_discovery(self, world):
        backend, alice, _, media, _ = world
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        for message in push_revocation(backend, "alice"):
            if message.addressee == "media":
                assert receiver.apply(message)
        # alice is now rejected by the real engine
        result = run_round(SubjectEngine(alice), {"media": ObjectEngine(media)})
        assert result.services == []

    def test_forged_signature_rejected(self, world):
        backend, _, _, media, _ = world
        rogue = UpdatePublisher(generate_signing_key())
        message = rogue.revoke_subject("media", "alice")
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert not receiver.apply(message)
        assert "alice" not in media.revoked_subjects

    def test_misaddressed_rejected(self, world):
        backend, _, _, media, _ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("someone-else", "alice")
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert not receiver.apply(message)

    def test_replayed_update_rejected(self, world):
        backend, _, _, media, _ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("media", "alice")
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert receiver.apply(message)
        assert not receiver.apply(message)  # same sequence: stale

    def test_tampered_payload_rejected(self, world):
        backend, _, _, media, _ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("media", "alice")
        tampered = UpdateMessage(
            message.msg_type, message.sequence, message.addressee,
            b"mallory", message.signature,
        )
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert not receiver.apply(tampered)


class TestRekeyPush:
    def test_rekey_restores_covert_discovery(self, world):
        """Full lifecycle on the wire: rekey the group, push to both
        fellows, and verify covert discovery works under the NEW key."""
        backend, _, sam, _, kiosk = world
        group_id = next(iter(sam.group_keys))
        # backend rotates the key (e.g., after some other fellow left)
        from repro.crypto.primitives import random_bytes

        group = backend.groups.groups[group_id]
        group.key = random_bytes(32)
        group.key_version += 1

        sam_rx = UpdateReceiver("sam", backend.admin_public, subject_creds=sam)
        kiosk_rx = UpdateReceiver("kiosk", backend.admin_public, object_creds=kiosk)
        receivers = {"sam": sam_rx, "kiosk": kiosk_rx}
        for message in push_group_rekey(backend, group_id):
            assert receivers[message.addressee].apply(message)

        assert sam.group_keys[group_id] == group.key
        assert kiosk.level3_variants[group_id][0] == group.key
        result = run_round(SubjectEngine(sam), {"kiosk": ObjectEngine(kiosk)},
                           group_id=group_id)
        assert result.services[0].level_seen == 3

    def test_rekey_confidential_to_third_parties(self, world):
        """The pushed key is ECIES-wrapped: another registered device
        cannot decrypt a rekey addressed to sam."""
        backend, alice, sam, media, _ = world
        group_id = next(iter(sam.group_keys))
        messages = [
            m for m in push_group_rekey(backend, group_id) if m.addressee == "sam"
        ]
        assert messages
        eve_rx = UpdateReceiver("sam", backend.admin_public, subject_creds=alice)
        # eve spoofs sam's id but holds alice's private key: ECIES fails
        assert not eve_rx.apply(messages[0])
        assert any("undecryptable" in str(e) for e in eve_rx.errors)

    def test_rekey_to_unissued_members_skipped(self, world):
        backend, _, sam, _, _ = world
        group_id = next(iter(sam.group_keys))
        backend.groups.groups[group_id].subject_members.add("ghost-member")
        messages = push_group_rekey(backend, group_id)
        assert all(m.addressee != "ghost-member" for m in messages)
