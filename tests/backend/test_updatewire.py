"""The update plane: signed revocations, ECIES-wrapped rekeys."""

import pytest

from repro.backend import Backend
from repro.backend.updates import ChurnEngine
from repro.backend.updatewire import (
    GROUP_ADDR_PREFIX,
    TYPE_BUNDLE,
    TYPE_REKEY,
    TYPE_REVOKE,
    UpdateBatcher,
    UpdateMessage,
    UpdatePublisher,
    UpdateReceiver,
    UpdateWireError,
    push_group_rekey,
    push_group_rekey_lkh,
    push_revocation,
)
from repro.crypto.ecdsa import generate_signing_key
from repro.protocol import ObjectEngine, SubjectEngine
from repro.protocol.discovery import run_round


@pytest.fixture
def world():
    backend = Backend()
    backend.add_sensitive_policy("sensitive:s", "sensitive:serves-s")
    backend.add_policy("p", "position=='staff'", "type=='multimedia'")
    alice = backend.register_subject("alice", {"position": "staff"})
    sam = backend.register_subject("sam", {"position": "staff"}, ("sensitive:s",))
    media = backend.register_object(
        "media", {"type": "multimedia"}, level=2, functions=("play",),
        variants=[("position=='staff'", ("play",))],
    )
    kiosk = backend.register_object(
        "kiosk", {"type": "kiosk"}, level=3, functions=("mag",),
        variants=[("true", ("mag",))],
        covert_functions={"sensitive:serves-s": ("flyer",)},
    )
    return backend, alice, sam, media, kiosk


class TestMessageFormat:
    def test_roundtrip(self, world):
        backend, *_ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("media", "alice")
        restored = UpdateMessage.from_bytes(message.to_bytes())
        assert restored == message

    def test_garbage_rejected(self):
        with pytest.raises(UpdateWireError):
            UpdateMessage.from_bytes(b"\x20\x00")

    def test_sequence_increments(self, world):
        backend, *_ = world
        publisher = UpdatePublisher(backend.root_key)
        a = publisher.revoke_subject("media", "x")
        b = publisher.revoke_subject("media", "y")
        assert b.sequence == a.sequence + 1


class TestRevocationPush:
    def test_applies_and_blocks_discovery(self, world):
        backend, alice, _, media, _ = world
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        for message in push_revocation(backend, "alice"):
            if message.addressee == "media":
                assert receiver.apply(message)
        # alice is now rejected by the real engine
        result = run_round(SubjectEngine(alice), {"media": ObjectEngine(media)})
        assert result.services == []

    def test_forged_signature_rejected(self, world):
        backend, _, _, media, _ = world
        rogue = UpdatePublisher(generate_signing_key())
        message = rogue.revoke_subject("media", "alice")
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert not receiver.apply(message)
        assert "alice" not in media.revoked_subjects

    def test_misaddressed_rejected(self, world):
        backend, _, _, media, _ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("someone-else", "alice")
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert not receiver.apply(message)

    def test_replayed_update_rejected(self, world):
        backend, _, _, media, _ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("media", "alice")
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert receiver.apply(message)
        assert not receiver.apply(message)  # same sequence: stale

    def test_tampered_payload_rejected(self, world):
        backend, _, _, media, _ = world
        publisher = UpdatePublisher(backend.root_key)
        message = publisher.revoke_subject("media", "alice")
        tampered = UpdateMessage(
            message.msg_type, message.sequence, message.addressee,
            b"mallory", message.signature,
        )
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert not receiver.apply(tampered)


class TestRekeyPush:
    def test_rekey_restores_covert_discovery(self, world):
        """Full lifecycle on the wire: rekey the group, push to both
        fellows, and verify covert discovery works under the NEW key."""
        backend, _, sam, _, kiosk = world
        group_id = next(iter(sam.group_keys))
        # backend rotates the key (e.g., after some other fellow left)
        from repro.crypto.primitives import random_bytes

        group = backend.groups.groups[group_id]
        group.key = random_bytes(32)
        group.key_version += 1

        sam_rx = UpdateReceiver("sam", backend.admin_public, subject_creds=sam)
        kiosk_rx = UpdateReceiver("kiosk", backend.admin_public, object_creds=kiosk)
        receivers = {"sam": sam_rx, "kiosk": kiosk_rx}
        for message in push_group_rekey(backend, group_id):
            assert receivers[message.addressee].apply(message)

        assert sam.group_keys[group_id] == group.key
        assert kiosk.level3_variants[group_id][0] == group.key
        result = run_round(SubjectEngine(sam), {"kiosk": ObjectEngine(kiosk)},
                           group_id=group_id)
        assert result.services[0].level_seen == 3

    def test_rekey_confidential_to_third_parties(self, world):
        """The pushed key is ECIES-wrapped: another registered device
        cannot decrypt a rekey addressed to sam."""
        backend, alice, sam, media, _ = world
        group_id = next(iter(sam.group_keys))
        messages = [
            m for m in push_group_rekey(backend, group_id) if m.addressee == "sam"
        ]
        assert messages
        eve_rx = UpdateReceiver("sam", backend.admin_public, subject_creds=alice)
        # eve spoofs sam's id but holds alice's private key: ECIES fails
        assert not eve_rx.apply(messages[0])
        assert any("undecryptable" in str(e) for e in eve_rx.errors)

    def test_rekey_to_unissued_members_skipped(self, world):
        backend, _, sam, _, _ = world
        group_id = next(iter(sam.group_keys))
        backend.groups.groups[group_id].subject_members.add("ghost-member")
        messages = push_group_rekey(backend, group_id)
        assert all(m.addressee != "ghost-member" for m in messages)


class TestBundles:
    def test_burst_coalesces_to_one_message_per_recipient(self, world):
        backend, alice, sam, media, kiosk = world
        publisher = UpdatePublisher(backend.root_key)
        batcher = UpdateBatcher(publisher)
        batcher.add_revocation("media", "alice")
        batcher.add_revocation("media", "alice")  # duplicate collapses
        batcher.add_revocation("media", "sam")
        batcher.add_revocation("kiosk", "alice")
        messages = batcher.flush()
        assert len(messages) == 2
        by_addr = {m.addressee: m for m in messages}
        assert by_addr["media"].msg_type == TYPE_BUNDLE
        # A single staged update ships in the plain (unbundled) form.
        assert by_addr["kiosk"].msg_type == TYPE_REVOKE

    def test_bundle_applies_all_inner_updates(self, world):
        backend, alice, sam, media, kiosk = world
        publisher = UpdatePublisher(backend.root_key)
        batcher = UpdateBatcher(publisher)
        batcher.add_revocation("media", "alice")
        batcher.add_revocation("media", "sam")
        (message,) = batcher.flush()
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        epoch_before = media.resumption_epoch
        assert receiver.apply(message)
        assert {"alice", "sam"} <= media.revoked_subjects
        assert media.resumption_epoch > epoch_before

    def test_superseded_rekey_ships_final_version_only(self, world):
        backend, alice, sam, media, kiosk = world
        publisher = UpdatePublisher(backend.root_key)
        batcher = UpdateBatcher(publisher)
        group_id = next(iter(sam.group_keys))
        public = sam.signing_key.public_key
        batcher.add_rekey("sam", public, group_id, b"a" * 32, 2)
        batcher.add_rekey("sam", public, group_id, b"b" * 32, 3)
        (message,) = batcher.flush()
        assert message.msg_type == TYPE_REKEY
        receiver = UpdateReceiver(
            "sam", backend.admin_public, subject_creds=sam
        )
        assert receiver.apply(message)
        assert sam.group_keys[group_id] == b"b" * 32

    def test_flush_clears_state(self, world):
        backend, *_ = world
        batcher = UpdateBatcher(UpdatePublisher(backend.root_key))
        batcher.add_revocation("media", "alice")
        batcher.flush()
        assert batcher.flush() == []
        assert batcher.pending_recipients() == set()

    def test_nested_bundle_rejected(self, world):
        backend, alice, sam, media, kiosk = world
        publisher = UpdatePublisher(backend.root_key)
        inner = publisher.bundle("media", [(TYPE_REVOKE, b"alice")])
        outer = publisher.bundle("media", [(TYPE_BUNDLE, inner.payload)])
        receiver = UpdateReceiver("media", backend.admin_public, object_creds=media)
        assert not receiver.apply(outer)


class TestLkhBroadcast:
    def _group_world(self, world):
        backend, alice, sam, media, kiosk = world
        group = backend.groups.groups_of_subject("sam")[0]
        return backend, sam, kiosk, group

    def test_broadcast_reaches_members_only(self, world):
        backend, sam, kiosk, group = self._group_world(world)
        state = backend.groups.member_state(group.group_id, "sam")
        # Enroll a second subject so removal leaves someone to notify.
        backend.register_subject(
            "tam", {"position": "student"}, ("sensitive:s",)
        )
        report = backend.groups.remove_member(group.group_id, "kiosk")
        messages = push_group_rekey_lkh(backend, group.group_id, report.updates)
        assert len(messages) == 1
        message = messages[0]
        assert message.addressee == GROUP_ADDR_PREFIX + group.group_id

        member = UpdateReceiver(
            "sam", backend.admin_public, subject_creds=sam,
            lkh_members={group.group_id: state},
        )
        assert member.apply(message)
        assert sam.group_keys[group.group_id] == group.key

        outsider = UpdateReceiver("staff-alice", backend.admin_public)
        assert not outsider.apply(message)

    def test_evicted_member_cannot_advance(self, world):
        backend, sam, kiosk, group = self._group_world(world)
        evicted_state = backend.groups.member_state(group.group_id, "sam")
        old_key = dict(sam.group_keys)[group.group_id]
        report = backend.groups.remove_member(group.group_id, "sam")
        messages = push_group_rekey_lkh(backend, group.group_id, report.updates)
        evictee = UpdateReceiver(
            "sam", backend.admin_public, subject_creds=sam,
            lkh_members={group.group_id: evicted_state},
        )
        for message in messages:
            evictee.apply(message)
        # The stream passed the wire checks but none of its blobs opened:
        # the evictee's key view is frozen at the pre-eviction key.
        assert sam.group_keys[group.group_id] == old_key
        assert sam.group_keys[group.group_id] != group.key

    def test_object_side_epoch_bumps_on_lkh_rekey(self, world):
        backend, sam, kiosk, group = self._group_world(world)
        state = backend.groups.member_state(group.group_id, "kiosk")
        epoch_before = kiosk.resumption_epoch
        report = backend.groups.remove_member(group.group_id, "sam")
        (message,) = push_group_rekey_lkh(backend, group.group_id, report.updates)
        receiver = UpdateReceiver(
            "kiosk", backend.admin_public, object_creds=kiosk,
            lkh_members={group.group_id: state},
        )
        assert receiver.apply(message)
        assert kiosk.level3_variants[group.group_id][0] == group.key
        assert kiosk.resumption_epoch > epoch_before


class TestChurnEngineWire:
    def test_burst_is_one_flush_per_recipient(self, world):
        backend, alice, sam, media, kiosk = world
        extra = backend.register_subject("staff-bob", {"position": "staff"})
        wire = UpdateBatcher(UpdatePublisher(backend.root_key))
        churn = ChurnEngine(backend, wire=wire)
        with churn.batch():
            churn.remove_subject("alice")
            churn.remove_subject("staff-bob")
        addressees = [m.addressee for m in churn.last_wire_flush]
        # One message per recipient across the whole burst, no repeats.
        assert len(addressees) == len(set(addressees))
        assert "media" in addressees

    def test_unbatched_removal_flushes_immediately(self, world):
        backend, alice, sam, media, kiosk = world
        wire = UpdateBatcher(UpdatePublisher(backend.root_key))
        churn = ChurnEngine(backend, wire=wire)
        churn.remove_subject("sam")
        assert churn.last_wire_flush
        assert wire.pending_recipients() == set()
        lkh_streams = [
            m for m in churn.last_wire_flush
            if m.addressee.startswith(GROUP_ADDR_PREFIX)
        ]
        assert len(lkh_streams) == 1
