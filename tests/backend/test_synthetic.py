"""Synthetic enterprise generator tests."""

import pytest

from repro.backend import Backend
from repro.backend.database import BackendDatabase
from repro.backend.synthetic import (
    OBJECT_TYPES,
    SyntheticConfig,
    generate,
    populate,
    provision,
)


class TestGenerate:
    def test_deterministic(self):
        a = generate(SyntheticConfig(seed=7))
        b = generate(SyntheticConfig(seed=7))
        assert a.subject_specs == b.subject_specs
        assert a.object_specs == b.object_specs

    def test_seed_changes_population(self):
        a = generate(SyntheticConfig(seed=1))
        b = generate(SyntheticConfig(seed=2))
        assert a.subject_specs != b.subject_specs

    def test_counts(self):
        cfg = SyntheticConfig(n_subjects=50, n_buildings=2, rooms_per_building=5,
                              objects_per_room=3)
        ent = generate(cfg)
        assert len(ent.subject_specs) == 50
        assert len(ent.object_specs) == 2 * 5 * 3

    def test_levels_follow_types(self):
        ent = generate(SyntheticConfig())
        for spec in ent.object_specs:
            natural = OBJECT_TYPES[spec["attributes"]["type"]]
            # Level 3 specs may be downgraded to 2 if no group claimed them.
            assert spec["level"] in (natural, 2) if natural == 3 else spec["level"] == natural

    def test_level3_objects_have_groups(self):
        ent = generate(SyntheticConfig(n_secret_groups=2))
        for spec in ent.object_specs:
            if spec["level"] == 3:
                assert spec.get("covert_for")

    def test_gamma_members_spread(self):
        cfg = SyntheticConfig(n_secret_groups=1, gamma=5)
        ent = generate(cfg)
        sensitive = [s for s in ent.subject_specs if s["sensitive_attributes"]]
        assert len(sensitive) == 4  # gamma - 1 subjects (objects fill the rest)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_subjects=0)
        with pytest.raises(ValueError):
            SyntheticConfig(n_secret_groups=99)


class TestPopulate:
    def test_db_counts_match(self):
        cfg = SyntheticConfig(n_subjects=100)
        ent = generate(cfg)
        db = BackendDatabase()
        populate(ent, db)
        assert len(db.subjects) == 100
        assert len(db.objects) == len(ent.object_specs)
        assert len(db.policies) == len(ent.policy_specs)

    def test_accessibility_nonempty(self):
        ent = generate(SyntheticConfig(n_subjects=20))
        db = BackendDatabase()
        populate(ent, db)
        any_access = any(
            db.objects_accessible_by(sid) for sid in list(db.subjects)[:5]
        )
        assert any_access


class TestProvision:
    def test_full_registration(self):
        cfg = SyntheticConfig(n_subjects=10, n_buildings=1, rooms_per_building=3,
                              objects_per_room=2)
        ent = generate(cfg)
        backend = Backend()
        provision(ent, backend)
        assert len(backend.issued_subjects) == 10
        assert len(backend.issued_objects) == 6
        # every sensitive subject got a group key
        for spec in ent.subject_specs:
            if spec["sensitive_attributes"]:
                creds = backend.issued_subjects[spec["subject_id"]]
                assert creds.group_keys
