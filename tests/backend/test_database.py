"""Backend database: records, policies, category queries (alpha/beta/N)."""

import pytest

from repro.attributes.model import AttributeSet
from repro.attributes.predicate import parse_predicate
from repro.backend.database import (
    BackendDatabase,
    DatabaseError,
    ObjectRecord,
    Policy,
    SubjectRecord,
)


@pytest.fixture
def db():
    db = BackendDatabase()
    for i in range(6):
        db.add_subject(SubjectRecord(
            f"u{i}", AttributeSet(
                position="manager" if i < 2 else "staff",
                department="X" if i % 2 == 0 else "Y",
            ),
        ))
    for i in range(8):
        db.add_object(ObjectRecord(
            f"o{i}", AttributeSet(
                type="door lock" if i < 4 else "light",
                building="A" if i % 2 == 0 else "B",
            ),
            level=2 if i < 4 else 1,
        ))
    db.add_policy(Policy(
        "managers-locks",
        parse_predicate("position=='manager'"),
        parse_predicate("type=='door lock'"),
        ("open", "close"),
    ))
    db.add_policy(Policy(
        "dept-x-lights",
        parse_predicate("department=='X'"),
        parse_predicate("type=='light' && building=='A'"),
        ("on",),
    ))
    return db


class TestMutation:
    def test_duplicate_subject_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.add_subject(SubjectRecord("u0", AttributeSet()))

    def test_duplicate_object_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.add_object(ObjectRecord("o0", AttributeSet()))

    def test_duplicate_policy_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.add_policy(Policy("managers-locks", parse_predicate("true"),
                                 parse_predicate("true")))

    def test_remove_unknown_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.remove_subject("ghost")
        with pytest.raises(DatabaseError):
            db.remove_object("ghost")
        with pytest.raises(DatabaseError):
            db.remove_policy("ghost")

    def test_remove_returns_record(self, db):
        record = db.remove_subject("u0")
        assert record.subject_id == "u0"
        assert "u0" not in db.subjects

    def test_invalid_level_rejected(self):
        with pytest.raises(DatabaseError):
            ObjectRecord("x", AttributeSet(), level=4)


class TestCategoryQueries:
    def test_alpha_subject_category(self, db):
        managers = db.subjects_matching(parse_predicate("position=='manager'"))
        assert {s.subject_id for s in managers} == {"u0", "u1"}

    def test_beta_object_category(self, db):
        locks = db.objects_matching(parse_predicate("type=='door lock'"))
        assert len(locks) == 4

    def test_policies_for_subject(self, db):
        manager = db.subjects["u0"]  # manager, dept X
        ids = {p.policy_id for p in db.policies_for_subject(manager)}
        assert ids == {"managers-locks", "dept-x-lights"}

    def test_n_objects_accessible(self, db):
        # u0: manager & dept X -> 4 locks + lights in building A (o4, o6)
        accessible = {o.object_id for o in db.objects_accessible_by("u0")}
        assert accessible == {"o0", "o1", "o2", "o3", "o4", "o6"}

    def test_accessible_deduplicates_across_policies(self, db):
        db.add_policy(Policy(
            "managers-locks-2",
            parse_predicate("position=='manager'"),
            parse_predicate("type=='door lock'"),
        ))
        accessible = [o.object_id for o in db.objects_accessible_by("u0")]
        assert len(accessible) == len(set(accessible))

    def test_subjects_with_access_to(self, db):
        allowed = {s.subject_id for s in db.subjects_with_access_to("o0")}
        assert allowed == {"u0", "u1"}

    def test_unknown_ids_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.objects_accessible_by("ghost")
        with pytest.raises(DatabaseError):
            db.subjects_with_access_to("ghost")
