"""Property: LKH rekeying is semantically equivalent to flat rekeying.

Hypothesis drives random churn sequences through a flat and an LKH
:class:`GroupManager` side by side and checks the paper-facing contract:

* every remaining member ends holding the same effective group key
  (recovered purely from the published update stream, as a fielded
  device would);
* an evicted member's key set opens nothing published at or after its
  eviction — its view of the group key goes permanently stale;
* the updating overhead (notified entities) is identical to flat, and
  the wire messages per removal are O(log n), never more than flat.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.backend.groups import GroupManager
from repro.backend.lkh import (
    LKHTree,
    MemberState,
    flat_rekey_messages,
    lkh_rekey_messages_bound,
)

NAMES = [f"m{i}" for i in range(12)]

# A churn script: (member index, want_in_group). Interpreted as join if
# the member is absent, removal if present; no-ops skipped.
churn_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(NAMES) - 1), st.booleans()),
    min_size=1,
    max_size=40,
)


def run_script(manager: GroupManager, script) -> tuple[list, int, int]:
    """Apply a script; returns (reports, peak size, total overhead)."""
    group = manager.create_group("sensitive:a", "sensitive:sa")
    reports = []
    peak = 0
    for index, want_in in script:
        member = NAMES[index]
        present = member in group.subject_members
        if want_in and not present:
            manager.enroll_subject(group.group_id, member)
            peak = max(peak, group.size)
        elif not want_in and present:
            reports.append(manager.remove_member(group.group_id, member))
    return reports, peak, sum(r.overhead for r in reports)


@given(script=churn_scripts)
@settings(max_examples=60, deadline=None)
def test_lkh_overhead_matches_flat_and_messages_are_logarithmic(script):
    flat_reports, _, flat_total = run_script(GroupManager(strategy="flat"), script)
    lkh_reports, peak, lkh_total = run_script(GroupManager(strategy="lkh"), script)

    # Same notified-entity overhead — the paper's gamma - 1 metric is
    # strategy-independent.
    assert lkh_total == flat_total
    assert [r.overhead for r in lkh_reports] == [r.overhead for r in flat_reports]

    capacity = max(2, 1 << max(peak - 1, 0).bit_length())
    for flat_report, lkh_report in zip(flat_reports, lkh_reports):
        # Always within the LKH bound; at tiny sizes the constant factor
        # (two seals per rotated node) can exceed gamma - 1, so the
        # strictly-beats-flat claim only binds once log2 wins.
        assert lkh_report.messages_pushed <= lkh_rekey_messages_bound(capacity)
        if flat_report.overhead >= 16:
            assert lkh_report.messages_pushed <= flat_report.messages_pushed


@given(script=churn_scripts)
@settings(max_examples=60, deadline=None)
def test_survivors_recover_group_key_and_evictees_go_stale(script):
    manager = GroupManager(strategy="lkh")
    group = manager.create_group("sensitive:a", "sensitive:sa")
    tree = manager.trees[group.group_id]

    fielded: dict[str, MemberState] = {}
    evicted: dict[str, MemberState] = {}
    for index, want_in in script:
        member = NAMES[index]
        present = member in group.subject_members
        if want_in and not present:
            manager.enroll_subject(group.group_id, member)
            # Device provisioned with its path keys at issuance.
            fielded[member] = MemberState.provision(tree, member)
            evicted.pop(member, None)
        elif not want_in and present:
            report = manager.remove_member(group.group_id, member)
            evicted[member] = fielded.pop(member)
            for state in fielded.values():
                state.apply_all(list(report.updates))
            for state in evicted.values():
                state.apply_all(list(report.updates))

    # The manager kept the SecretGroup key pinned to the tree root.
    if group.size:
        assert group.key == tree.root_key
    # Every remaining member recovered the current key purely from the
    # published stream; every evictee is stuck on a stale one.
    for member, state in fielded.items():
        assert state.group_key() == tree.root_key, member
    for member, state in evicted.items():
        assert state.group_key() != tree.root_key, member


@given(
    size=st.integers(min_value=2, max_value=64),
    victim=st.integers(min_value=0),
)
@settings(max_examples=40, deadline=None)
def test_single_removal_message_count(size, victim):
    """Direct tree-level check: one removal from an n-member tree costs
    at most 2*ceil(log2 capacity) messages and strictly beats flat for
    n > 8 or so — here we only pin the bound, which is the CI gate."""
    tree = LKHTree("g", capacity=2)
    tree.build_bulk([f"m{i}" for i in range(size)])
    updates, cost = tree.remove(f"m{victim % size}")
    assert len(updates) <= lkh_rekey_messages_bound(tree.capacity)
    assert cost.keys_derived <= math.ceil(math.log2(tree.capacity)) + 1
    if size >= 16:
        assert len(updates) <= flat_rekey_messages(size)
