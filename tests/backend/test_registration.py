"""Bootstrapping: credentials issued by the Backend facade (§IV-A)."""

import pytest

from repro.backend import Backend, DatabaseError
from repro.pki.chain import ChainVerifier


@pytest.fixture(scope="module")
def backend():
    b = Backend()
    b.add_sensitive_policy("sensitive:needs-x", "sensitive:serves-x")
    return b


class TestSubjectRegistration:
    def test_credentials_complete(self, backend):
        creds = backend.register_subject("reg-alice", {"position": "staff"})
        assert creds.subject_id == "reg-alice"
        assert creds.cert_chain.verify(creds.root_id, creds.admin_public)
        assert creds.profile.verify(creds.admin_public)
        assert creds.profile.attributes["position"] == "staff"
        assert len(creds.coverup_key) == 32

    def test_chain_passes_chain_verifier(self, backend):
        creds = backend.register_subject("reg-bob", {"position": "staff"})
        verifier = ChainVerifier(creds.root_id, creds.admin_public)
        leaf = verifier.verify(creds.cert_chain)
        assert leaf is not None and leaf.subject_id == "reg-bob"

    def test_sensitive_subject_gets_group_key(self, backend):
        creds = backend.register_subject(
            "reg-sam", {"position": "student"}, ("sensitive:needs-x",)
        )
        assert len(creds.group_keys) == 1
        group_id = next(iter(creds.group_keys))
        assert backend.groups.groups[group_id].subject_attribute == "sensitive:needs-x"

    def test_plain_subject_gets_only_coverup(self, backend):
        creds = backend.register_subject("reg-eve", {"position": "visitor"})
        assert creds.group_keys == {}
        # discovery_keys always yields something to use for Level 3 rounds
        keys = creds.discovery_keys()
        assert keys[-1][0] == "coverup"

    def test_coverup_keys_unique_across_subjects(self, backend):
        c1 = backend.register_subject("reg-u1", {"position": "staff"})
        c2 = backend.register_subject("reg-u2", {"position": "staff"})
        assert c1.coverup_key != c2.coverup_key

    def test_sensitive_attrs_never_in_profile(self, backend):
        creds = backend.register_subject(
            "reg-pat", {"position": "student"}, ("sensitive:needs-x",)
        )
        assert all(not k.startswith("sensitive:") for k in creds.profile.attributes)

    def test_duplicate_registration_rejected(self, backend):
        backend.register_subject("reg-dup", {"position": "staff"})
        with pytest.raises(DatabaseError):
            backend.register_subject("reg-dup", {"position": "staff"})


class TestObjectRegistration:
    def test_level1(self, backend):
        creds = backend.register_object(
            "reg-t1", {"type": "thermometer"}, level=1, functions=("read",)
        )
        assert creds.level == 1
        assert creds.public_profile.functions == ("read",)
        assert creds.level2_variants == []
        assert creds.level3_variants == {}

    def test_level2_variants_signed(self, backend):
        creds = backend.register_object(
            "reg-m1", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("position=='manager'", ("play", "admin")),
                      ("position=='staff'", ("play",))],
        )
        assert len(creds.level2_variants) == 2
        for variant in creds.level2_variants:
            assert variant.profile.verify(backend.admin_public)

    def test_level2_without_variants_rejected(self, backend):
        with pytest.raises(DatabaseError):
            backend.register_object("reg-bad", {"type": "x"}, level=2)

    def test_level3_gets_group_key_and_covert_variant(self, backend):
        creds = backend.register_object(
            "reg-k1", {"type": "kiosk"}, level=3, functions=("mag",),
            variants=[("true", ("mag",))],
            covert_functions={"sensitive:serves-x": ("flyer",)},
        )
        assert len(creds.level3_variants) == 1
        group_id, (key, prof) = next(iter(creds.level3_variants.items()))
        assert backend.groups.groups[group_id].key == key
        assert prof.functions == ("flyer",)
        assert prof.verify(backend.admin_public)

    def test_level3_without_covert_rejected(self, backend):
        with pytest.raises(DatabaseError):
            backend.register_object(
                "reg-bad3", {"type": "kiosk"}, level=3,
                variants=[("true", ("mag",))],
            )

    def test_covert_on_level2_rejected(self, backend):
        with pytest.raises(DatabaseError):
            backend.register_object(
                "reg-bad2", {"type": "x"}, level=2,
                variants=[("true", ("f",))],
                covert_functions={"sensitive:serves-x": ("f",)},
            )

    def test_unknown_sensitive_attribute_rejected(self, backend):
        with pytest.raises(DatabaseError, match="no secret group"):
            backend.register_object(
                "reg-bad4", {"type": "kiosk"}, level=3,
                variants=[("true", ("mag",))],
                covert_functions={"sensitive:serves-ghost": ("flyer",)},
            )

    def test_fellow_subject_and_object_share_key(self, backend):
        subject = backend.register_subject(
            "reg-fel", {"position": "student"}, ("sensitive:needs-x",)
        )
        obj = backend.register_object(
            "reg-k2", {"type": "kiosk"}, level=3, functions=("mag",),
            variants=[("true", ("mag",))],
            covert_functions={"sensitive:serves-x": ("flyer",)},
        )
        group_id = next(iter(obj.level3_variants))
        assert subject.group_keys[group_id] == obj.level3_variants[group_id][0]


class TestHierarchy:
    def test_multi_region_chains(self):
        backend = Backend(regions=("north", "south"))
        c1 = backend.register_subject("u1", {"position": "staff"}, region="north")
        c2 = backend.register_subject("u2", {"position": "staff"}, region="south")
        assert c1.cert_chain.certificates[0].issuer_id == "admin-north"
        assert c2.cert_chain.certificates[0].issuer_id == "admin-south"
        for creds in (c1, c2):
            assert creds.cert_chain.verify(creds.root_id, backend.admin_public)

    def test_unknown_region_rejected(self):
        backend = Backend()
        with pytest.raises(DatabaseError):
            backend.register_subject("u", {"position": "staff"}, region="mars")
