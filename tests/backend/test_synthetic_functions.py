"""Synthetic generator internals: function tables, level mapping."""

import pytest

from repro.backend.synthetic import OBJECT_TYPES, _functions_for


class TestFunctionTable:
    def test_every_type_has_functions(self):
        for obj_type in OBJECT_TYPES:
            functions = _functions_for(obj_type)
            assert functions and all(isinstance(f, str) for f in functions)

    def test_unknown_type_gets_default(self):
        assert _functions_for("mystery-gadget") == ("use",)

    def test_level_assignments_sane(self):
        """Level 1 = public utilities; Level 3 = covert-capable dispensers."""
        assert OBJECT_TYPES["thermometer"] == 1
        assert OBJECT_TYPES["door lock"] == 2
        assert OBJECT_TYPES["magazine kiosk"] == 3
        assert set(OBJECT_TYPES.values()) == {1, 2, 3}
