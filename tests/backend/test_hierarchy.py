"""Deep server hierarchies: multi-level chains through the live protocol."""

import pytest

from repro.backend import Backend, DatabaseError
from repro.crypto import meter
from repro.pki.chain import ChainVerifier
from repro.protocol import ObjectEngine, SubjectEngine
from repro.protocol.discovery import run_round


@pytest.fixture
def deep_backend():
    backend = Backend(regions=("campus",))
    backend.add_subregion("campus", "engineering")
    backend.add_subregion("engineering", "building-7")
    return backend


class TestHierarchy:
    def test_chain_depth_grows(self, deep_backend):
        user = deep_backend.register_subject(
            "deep-user", {"position": "staff"}, region="building-7"
        )
        assert len(user.cert_chain.certificates) == 4  # leaf + 3 admins
        assert user.cert_chain.verify(user.root_id, deep_backend.admin_public)

    def test_duplicate_region_rejected(self, deep_backend):
        with pytest.raises(DatabaseError):
            deep_backend.add_subregion("campus", "engineering")

    def test_unknown_parent_rejected(self, deep_backend):
        with pytest.raises(DatabaseError):
            deep_backend.add_subregion("mars", "dome-1")

    def test_cross_region_discovery(self, deep_backend):
        """A building-7 subject discovers a campus-level object: both
        chains root at the same admin."""
        user = deep_backend.register_subject(
            "b7-user", {"position": "staff"}, region="building-7"
        )
        obj = deep_backend.register_object(
            "campus-media", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("position=='staff'", ("play",))],
            region="campus",
        )
        result = run_round(SubjectEngine(user), {"campus-media": ObjectEngine(obj)})
        assert len(result.services) == 1

    def test_warm_deep_chain_is_one_verify(self, deep_backend):
        user = deep_backend.register_subject(
            "warm-user", {"position": "staff"}, region="building-7"
        )
        verifier = ChainVerifier(user.root_id, deep_backend.admin_public)
        verifier.warm_up(user.cert_chain)
        with meter.metered() as tally:
            assert verifier.verify(user.cert_chain) is not None
        assert tally.total("ecdsa_verify") == 1

    def test_cold_deep_chain_cost_scales_with_depth(self, deep_backend):
        user = deep_backend.register_subject(
            "cold-user", {"position": "staff"}, region="building-7"
        )
        verifier = ChainVerifier(user.root_id, deep_backend.admin_public)
        with meter.metered() as tally:
            assert verifier.verify(user.cert_chain) is not None
        assert tally.total("ecdsa_verify") == 4  # leaf + 3 intermediates

    def test_foreign_root_still_rejected(self, deep_backend):
        other = Backend()
        intruder = other.register_subject("intruder", {"position": "staff"})
        verifier = ChainVerifier("admin-root", deep_backend.admin_public)
        assert verifier.verify(intruder.cert_chain) is None
