"""LKH key tree mechanics: joins, removals, growth, member state."""

import math

import pytest

from repro.backend.lkh import (
    GROW,
    NODE_KEY_LEN,
    ROOT,
    KeyUpdate,
    LKHError,
    LKHTree,
    MemberState,
    flat_rekey_messages,
    lkh_rekey_messages_bound,
    seal_update,
)


@pytest.fixture
def tree():
    return LKHTree("g-test", capacity=4)


class TestTree:
    def test_join_hands_out_path_keys(self, tree):
        tree.join("alice")
        keys = tree.member_keys("alice")
        assert ROOT in keys
        assert keys[ROOT] == tree.root_key
        assert all(len(k) == NODE_KEY_LEN for k in keys.values())

    def test_join_does_not_rotate_root(self, tree):
        before = tree.root_key
        tree.join("alice")
        tree.join("bob")
        assert tree.root_key == before

    def test_duplicate_join_rejected(self, tree):
        tree.join("alice")
        with pytest.raises(LKHError):
            tree.join("alice")

    def test_remove_unknown_rejected(self, tree):
        with pytest.raises(LKHError):
            tree.remove("ghost")

    def test_remove_rotates_root(self, tree):
        for name in ("a", "b", "c"):
            tree.join(name)
        before = tree.root_key
        updates, cost = tree.remove("a")
        assert tree.root_key != before
        assert updates
        assert cost.keys_derived >= 1

    def test_remove_message_count_is_logarithmic(self):
        tree = LKHTree("g-big", capacity=2)
        members = [f"m{i}" for i in range(64)]
        tree.build_bulk(members)
        updates, cost = tree.remove("m17")
        assert len(updates) <= lkh_rekey_messages_bound(tree.capacity)
        assert len(updates) < flat_rekey_messages(64)
        assert cost.messages == len(updates)

    def test_capacity_grows_with_notice(self):
        tree = LKHTree("g-grow", capacity=2)
        tree.join("a")
        tree.join("b")
        updates, _ = tree.join("c")
        assert tree.capacity == 4
        assert tree.generation == 1
        assert any(u.is_grow for u in updates)

    def test_grow_preserves_group_key(self):
        tree = LKHTree("g-grow", capacity=2)
        tree.join("a")
        tree.join("b")
        before = tree.root_key
        tree.join("c")
        assert tree.root_key == before

    def test_leaf_slot_reused_after_removal(self, tree):
        tree.join("a")
        leaf = tree.leaf_of["a"]
        tree.remove("a")
        tree.join("b")
        assert tree.leaf_of["b"] == leaf

    def test_persistence_roundtrip(self, tree):
        for name in ("a", "b", "c"):
            tree.join(name)
        tree.remove("b")
        restored = LKHTree.from_dict(tree.to_dict())
        assert restored.root_key == tree.root_key
        assert restored.leaf_of == tree.leaf_of
        assert restored.keys == tree.keys
        assert restored.key_version == tree.key_version

    def test_last_member_leaving_keeps_a_root_key(self, tree):
        tree.join("solo")
        tree.remove("solo")
        assert len(tree.root_key) == NODE_KEY_LEN
        assert tree.size == 0


class TestKeyUpdateWire:
    def test_roundtrip(self):
        update = seal_update("g", 3, 6, b"k" * 32, b"n" * 32, 2, 0)
        restored = KeyUpdate.from_bytes(update.to_bytes())
        assert restored == update

    def test_open_requires_right_key(self):
        update = seal_update("g", 3, 6, b"k" * 32, b"n" * 32, 2, 0)
        assert update.open(b"k" * 32) == b"n" * 32
        with pytest.raises(LKHError):
            update.open(b"x" * 32)

    def test_garbage_rejected(self):
        with pytest.raises(LKHError):
            KeyUpdate.from_bytes(b"\x00")


class TestMemberState:
    def test_provision_matches_tree(self, tree):
        tree.join("alice")
        state = MemberState.provision(tree, "alice")
        assert state.group_key() == tree.root_key

    def test_survivor_follows_removal(self, tree):
        for name in ("a", "b", "c", "d"):
            tree.join(name)
        survivor = MemberState.provision(tree, "b")
        updates, _ = tree.remove("a")
        assert survivor.apply_all(updates) >= 1
        assert survivor.group_key() == tree.root_key

    def test_evictee_cannot_follow(self, tree):
        for name in ("a", "b", "c"):
            tree.join(name)
        evictee = MemberState.provision(tree, "a")
        updates, _ = tree.remove("a")
        assert evictee.apply_all(updates) == 0
        assert evictee.group_key() != tree.root_key

    def test_member_survives_grow(self):
        tree = LKHTree("g", capacity=2)
        tree.join("a")
        tree.join("b")
        state = MemberState.provision(tree, "a")
        updates, _ = tree.join("c")
        state.apply_all(updates)
        assert state.generation == tree.generation
        assert state.leaf == tree.leaf_of["a"]
        assert state.group_key() == tree.root_key
        # And it can still follow a post-grow removal.
        updates, _ = tree.remove("b")
        state.apply_all(updates)
        assert state.group_key() == tree.root_key

    def test_stale_generation_update_skipped(self, tree):
        tree.join("a")
        tree.join("b")
        state = MemberState.provision(tree, "a")
        stale = seal_update(
            tree.group_id, ROOT, tree.leaf_of["a"],
            state.keys[state.leaf], b"z" * 32, 9, state.generation + 5,
        )
        assert not state.apply(stale)


class TestBounds:
    def test_flat_message_count(self):
        assert flat_rekey_messages(100) == 99
        assert flat_rekey_messages(0) == 0

    def test_lkh_bound_shape(self):
        assert lkh_rekey_messages_bound(1024) == 2 * math.ceil(math.log2(1024))
        assert lkh_rekey_messages_bound(1) == 0
