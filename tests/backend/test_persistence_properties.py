"""Property tests: persistence round-trips arbitrary synthetic enterprises."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import Backend
from repro.backend.persistence import export_backend, import_backend
from repro.backend.synthetic import SyntheticConfig, generate, provision

configs = st.builds(
    SyntheticConfig,
    n_subjects=st.integers(min_value=1, max_value=12),
    n_departments=st.integers(min_value=1, max_value=3),
    n_buildings=st.integers(min_value=1, max_value=2),
    rooms_per_building=st.integers(min_value=1, max_value=3),
    objects_per_room=st.integers(min_value=1, max_value=2),
    n_secret_groups=st.integers(min_value=0, max_value=2),
    gamma=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=configs)
def test_roundtrip_preserves_everything(config):
    backend = Backend()
    provision(generate(config), backend)
    restored = import_backend(export_backend(backend))

    assert set(restored.database.subjects) == set(backend.database.subjects)
    assert set(restored.database.objects) == set(backend.database.objects)
    assert set(restored.database.policies) == set(backend.database.policies)
    assert set(restored.groups.groups) == set(backend.groups.groups)
    for gid, group in backend.groups.groups.items():
        mirror = restored.groups.groups[gid]
        assert mirror.key == group.key
        assert mirror.subject_members == group.subject_members
        assert mirror.object_members == group.object_members
    for sid, creds in backend.issued_subjects.items():
        mirror_s = restored.issued_subjects[sid]
        assert mirror_s.group_keys == creds.group_keys
        assert mirror_s.coverup_key == creds.coverup_key
        assert mirror_s.profile == creds.profile
    for oid, creds_o in backend.issued_objects.items():
        mirror_o = restored.issued_objects[oid]
        assert mirror_o.level == creds_o.level
        assert len(mirror_o.level2_variants) == len(creds_o.level2_variants)
        assert set(mirror_o.level3_variants) == set(creds_o.level3_variants)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=configs)
def test_double_export_is_stable(config):
    """export(import(export(x))) == export(x) for the data payloads
    (keys re-serialize identically; PEM is canonical)."""
    backend = Backend()
    provision(generate(config), backend)
    once = export_backend(backend)
    twice = export_backend(import_backend(once))
    assert once == twice
