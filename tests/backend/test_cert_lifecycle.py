"""Certificate expiry and renewal through the live protocol."""

import pytest

from repro.backend import Backend, DatabaseError
from repro.protocol import ObjectEngine, SubjectEngine
from repro.protocol.discovery import run_round


@pytest.fixture
def world():
    backend = Backend()
    user = backend.register_subject("cl-user", {"position": "staff"})
    obj = backend.register_object(
        "cl-media", {"type": "multimedia"}, level=2, functions=("play",),
        variants=[("position=='staff'", ("play",))],
    )
    return backend, user, obj


class TestExpiry:
    def test_expired_subject_cert_rejected(self, world):
        backend, user, obj = world
        backend.reissue_certificate("cl-user", not_before=0, not_after=100)
        # at now=50 the cert is valid
        result = run_round(
            SubjectEngine(user, now=50), {"cl-media": ObjectEngine(obj, now=50)}
        )
        assert len(result.services) == 1
        # at now=200 it has expired: the object rejects QUE2
        result = run_round(
            SubjectEngine(user, now=200), {"cl-media": ObjectEngine(obj, now=200)}
        )
        assert result.services == []

    def test_expired_object_cert_rejected_by_subject(self, world):
        backend, user, obj = world
        backend.reissue_certificate("cl-media", not_before=0, not_after=100)
        subject = SubjectEngine(user, now=200)
        result = run_round(subject, {"cl-media": ObjectEngine(obj, now=200)})
        assert result.services == []
        from repro.protocol.errors import AuthenticationError

        assert any(isinstance(e, AuthenticationError) for e in subject.errors)

    def test_not_yet_valid_rejected(self, world):
        backend, user, obj = world
        backend.reissue_certificate("cl-user", not_before=500, not_after=1000)
        result = run_round(
            SubjectEngine(user, now=100), {"cl-media": ObjectEngine(obj, now=100)}
        )
        assert result.services == []


class TestRenewal:
    def test_renewal_restores_discovery(self, world):
        backend, user, obj = world
        backend.reissue_certificate("cl-user", not_after=100)
        assert run_round(
            SubjectEngine(user, now=200), {"cl-media": ObjectEngine(obj, now=200)}
        ).services == []
        backend.reissue_certificate("cl-user", not_after=10_000)
        result = run_round(
            SubjectEngine(user, now=200), {"cl-media": ObjectEngine(obj, now=200)}
        )
        assert len(result.services) == 1

    def test_renewal_keeps_key_pair(self, world):
        backend, user, obj = world
        public_before = user.signing_key.public_key.to_bytes()
        backend.reissue_certificate("cl-user", not_after=9_999)
        assert user.signing_key.public_key.to_bytes() == public_before
        assert user.cert_chain.leaf.public_key.to_bytes() == public_before

    def test_renewal_for_unknown_entity_rejected(self, world):
        backend, *_ = world
        with pytest.raises(DatabaseError):
            backend.reissue_certificate("ghost")

    def test_renewed_serial_advances(self, world):
        backend, user, _ = world
        serial_before = user.cert_chain.leaf.serial
        backend.reissue_certificate("cl-user")
        assert user.cert_chain.leaf.serial > serial_before
