"""Provisioning snapshots: export/import round-trips to working state."""

import pytest

from repro.backend import Backend, ChurnEngine
from repro.backend.persistence import (
    PersistenceError,
    export_backend,
    import_backend,
    load_backend,
    save_backend,
)
from repro.protocol import discover


@pytest.fixture
def live_backend():
    backend = Backend()
    backend.add_sensitive_policy("sensitive:s", "sensitive:serves-s")
    backend.add_policy("p1", "position=='staff'", "type=='multimedia'", ("play",))
    backend.register_subject("alice", {"position": "staff"})
    backend.register_subject("sam", {"position": "staff"}, ("sensitive:s",))
    backend.register_object(
        "m1", {"type": "multimedia"}, level=2, functions=("play",),
        variants=[("position=='staff'", ("play",))],
    )
    backend.register_object(
        "k1", {"type": "kiosk"}, level=3, functions=("mag",),
        variants=[("true", ("mag",))],
        covert_functions={"sensitive:serves-s": ("flyer",)},
    )
    backend.register_object("t1", {"type": "thermometer"}, level=1, functions=("read",))
    return backend


class TestRoundtrip:
    def test_snapshot_is_json_serializable(self, live_backend):
        import json

        blob = json.dumps(export_backend(live_backend))
        assert "alice" in blob

    def test_database_restored(self, live_backend):
        restored = import_backend(export_backend(live_backend))
        assert set(restored.database.subjects) == {"alice", "sam"}
        assert set(restored.database.objects) == {"m1", "k1", "t1"}
        assert set(restored.database.policies) == {"p1"}
        assert len(restored.groups.groups) == 1

    def test_restored_credentials_discover(self, live_backend):
        """The acid test: restored credentials still run the protocol."""
        restored = import_backend(export_backend(live_backend))
        sam = restored.issued_subjects["sam"]
        fleet = list(restored.issued_objects.values())
        result = discover(sam, fleet)
        levels = {s.object_id: s.level_seen for s in result.services}
        assert levels == {"t1": 1, "m1": 2, "k1": 3}

    def test_cross_snapshot_interop(self, live_backend):
        """Credentials exported before and after a snapshot interoperate:
        the restored kiosk accepts the ORIGINAL sam's keys."""
        restored = import_backend(export_backend(live_backend))
        original_sam = live_backend.issued_subjects["sam"]
        fleet = list(restored.issued_objects.values())
        result = discover(original_sam, fleet)
        assert any(s.level_seen == 3 for s in result.services)

    def test_churn_works_after_restore(self, live_backend):
        restored = import_backend(export_backend(live_backend))
        churn = ChurnEngine(restored)
        report = churn.remove_subject("alice")
        assert report.overhead >= 1
        # new registrations keep working (serial counter restored)
        creds = restored.register_subject("newbie", {"position": "staff"})
        assert creds.cert_chain.verify(creds.root_id, restored.admin_public)

    def test_file_helpers(self, live_backend, tmp_path):
        path = str(tmp_path / "snapshot.json")
        save_backend(live_backend, path)
        restored = load_backend(path)
        assert set(restored.issued_objects) == {"m1", "k1", "t1"}

    def test_revocation_list_persisted(self, live_backend):
        churn = ChurnEngine(live_backend)
        churn.remove_subject("alice")
        restored = import_backend(export_backend(live_backend))
        assert "alice" in restored.issued_objects["m1"].revoked_subjects

    def test_bad_format_rejected(self):
        with pytest.raises(PersistenceError):
            import_backend({"format": 99})
