"""Churn engine: update propagation and overhead accounting (§VIII)."""

import pytest

from repro.backend import Backend, ChurnEngine
from repro.protocol import ObjectEngine, SubjectEngine
from repro.protocol.discovery import run_round


@pytest.fixture
def world():
    """A backend with 5 Level 2 objects, 3 same-department subjects, and
    one secret group with a fellow subject + kiosk."""
    backend = Backend()
    backend.add_sensitive_policy("sensitive:s", "sensitive:serves-s")
    backend.add_policy("dept-media", "department=='X'", "type=='multimedia'", ("play",))
    subjects = [
        backend.register_subject(f"u{i}", {"department": "X", "position": "staff"})
        for i in range(3)
    ]
    fellow = backend.register_subject(
        "fel", {"department": "X", "position": "staff"}, ("sensitive:s",)
    )
    objects = [
        backend.register_object(
            f"m{i}", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("department=='X'", ("play",))],
        )
        for i in range(5)
    ]
    kiosk = backend.register_object(
        "kiosk", {"type": "kiosk"}, level=3, functions=("mag",),
        variants=[("true", ("mag",))],
        covert_functions={"sensitive:serves-s": ("flyer",)},
    )
    return backend, ChurnEngine(backend), subjects, fellow, objects, kiosk


class TestAddSubject:
    def test_overhead_is_one(self, world):
        _, churn, *_ = world
        creds, report = churn.add_subject("newbie", {"department": "X", "position": "staff"})
        assert report.overhead == 1
        assert creds.subject_id == "newbie"

    def test_newcomer_can_discover_immediately(self, world):
        """The Argus advantage: no object is touched, yet discovery works."""
        backend, churn, _, _, objects, _ = world
        creds, _ = churn.add_subject("newbie2", {"department": "X", "position": "staff"})
        subject = SubjectEngine(creds)
        engines = {o.object_id: ObjectEngine(o) for o in objects}
        result = run_round(subject, engines)
        assert len(result.services) == len(objects)


class TestRemoveSubject:
    def test_overhead_is_n(self, world):
        backend, churn, subjects, *_ = world
        n = len(backend.database.objects_accessible_by("u0"))
        report = churn.remove_subject("u0")
        assert report.overhead == n

    def test_revoked_subject_fails_discovery(self, world):
        """The push is real: objects now reject the revoked subject."""
        backend, churn, subjects, _, objects, _ = world
        engines = {o.object_id: ObjectEngine(o) for o in objects}
        subject = SubjectEngine(subjects[0])
        assert len(run_round(subject, engines).services) == 5

        churn.remove_subject("u0")
        engines2 = {o.object_id: ObjectEngine(o) for o in objects}
        subject2 = SubjectEngine(subjects[0])
        result = run_round(subject2, engines2)
        assert result.services == []

    def test_other_subjects_unaffected(self, world):
        backend, churn, subjects, _, objects, _ = world
        churn.remove_subject("u0")
        subject = SubjectEngine(subjects[1])
        engines = {o.object_id: ObjectEngine(o) for o in objects}
        assert len(run_round(subject, engines).services) == 5

    def test_fellow_removal_rekeys_group(self, world):
        """Removing a fellow rekeys; her old key no longer opens Level 3."""
        backend, churn, _, fellow, _, kiosk = world
        group_id = next(iter(fellow.group_keys))
        old_key = fellow.group_keys[group_id]
        churn.remove_subject("fel")
        new_key = backend.groups.groups[group_id].key
        assert new_key != old_key
        # the kiosk's issued credentials were rekeyed in place
        assert kiosk.level3_variants[group_id][0] == new_key


class TestObjectChurn:
    def test_add_object_overhead_one(self, world):
        _, churn, *_ = world
        creds, report = churn.add_object(
            "m-new", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("department=='X'", ("play",))],
        )
        assert report.overhead == 1

    def test_remove_object(self, world):
        backend, churn, *_ = world
        report = churn.remove_object("m0")
        assert "m0" not in backend.database.objects
        assert report.overhead >= 1


class TestPolicyChurn:
    def test_add_policy_pushes_beta_variants(self, world):
        backend, churn, subjects, _, objects, _ = world
        report = churn.add_policy_with_variant(
            "managers-admin", "position=='manager'", "type=='multimedia'",
            functions=("play", "admin"),
        )
        beta = len(backend.database.objects_matching(
            backend.database.policies["managers-admin"].object_pred))
        assert report.overhead == beta
        # a manager (from another department, so no earlier variant
        # shadows the new one under first-match-wins) sees the new variant
        manager, _ = churn.add_subject("mgr", {"department": "Y", "position": "manager"})
        subject = SubjectEngine(manager)
        engines = {o.object_id: ObjectEngine(o) for o in objects}
        result = run_round(subject, engines)
        assert any("admin" in s.functions for s in result.services)

    def test_remove_policy_revokes_variant(self, world):
        backend, churn, subjects, _, objects, _ = world
        churn.add_policy_with_variant(
            "temp-policy", "position=='staff'", "type=='multimedia'",
            functions=("bonus",),
        )
        report = churn.remove_policy("temp-policy")
        assert report.overhead >= 1
        assert all(
            v.profile.variant != "policy-temp-policy"
            for o in objects for v in o.level2_variants
        )

    def test_total_overhead_accumulates(self, world):
        _, churn, *_ = world
        churn.add_subject("acc1", {"department": "X", "position": "staff"})
        churn.remove_subject("u1")
        assert churn.total_overhead() == sum(r.overhead for r in churn.log)
