"""Sharded backend: directory routing, API parity, cross-shard churn."""

import pytest

from repro.attributes.model import AttributeSet
from repro.attributes.predicate import parse_predicate
from repro.backend import Backend
from repro.backend.database import (
    BackendDatabase,
    DatabaseError,
    ObjectRecord,
    Policy,
    SubjectRecord,
)
from repro.backend.sharding import ConsistentHashDirectory, ShardedBackendDatabase
from repro.backend.updates import ChurnEngine
from repro.protocol.discovery import run_round, run_warm_round
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine

DEPARTMENTS = ["eng", "sales", "support", "facilities", "security", "legal"]


def subject(i: int) -> SubjectRecord:
    return SubjectRecord(
        subject_id=f"s{i:03d}",
        attributes=AttributeSet({
            "position": "staff" if i % 2 else "student",
            "department": DEPARTMENTS[i % len(DEPARTMENTS)],
        }),
    )


def obj(i: int) -> ObjectRecord:
    return ObjectRecord(
        object_id=f"o{i:03d}",
        attributes=AttributeSet({
            "type": "multimedia" if i % 2 else "printer",
            "department": DEPARTMENTS[i % len(DEPARTMENTS)],
        }),
        level=2,
        functions=("f",),
    )


class TestDirectory:
    def test_deterministic_routing(self):
        a = ConsistentHashDirectory(["shard-00", "shard-01", "shard-02"])
        b = ConsistentHashDirectory(["shard-00", "shard-01", "shard-02"])
        keys = [f"department={d}" for d in DEPARTMENTS] + [f"id{i}" for i in range(50)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_all_shards_reachable(self):
        directory = ConsistentHashDirectory([f"shard-{i:02d}" for i in range(4)])
        hit = {directory.shard_for(f"key-{i}") for i in range(500)}
        assert hit == set(directory.shard_ids)

    def test_adding_a_shard_moves_a_minority_of_keys(self):
        before = ConsistentHashDirectory([f"shard-{i:02d}" for i in range(4)])
        after = ConsistentHashDirectory([f"shard-{i:02d}" for i in range(4)])
        after.add_shard("shard-04")
        keys = [f"key-{i}" for i in range(1000)]
        moved = sum(1 for k in keys if before.shard_for(k) != after.shard_for(k))
        # Consistent hashing: ~1/5 of keys move, never a wholesale reshuffle.
        assert 0 < moved < 500

    def test_duplicate_shard_rejected(self):
        directory = ConsistentHashDirectory(["shard-00"])
        with pytest.raises(DatabaseError):
            directory.add_shard("shard-00")

    def test_needs_a_shard(self):
        with pytest.raises(DatabaseError):
            ConsistentHashDirectory([])


@pytest.fixture
def pair():
    """The same fleet loaded into a flat and a sharded database."""
    flat = BackendDatabase()
    sharded = ShardedBackendDatabase(shards=4)
    policies = [
        Policy("p-media", parse_predicate("position=='staff'"),
               parse_predicate("type=='multimedia'"), ("play",)),
        Policy("p-print", parse_predicate("department=='eng'"),
               parse_predicate("type=='printer'"), ("print",)),
    ]
    for db in (flat, sharded):
        for i in range(30):
            db.add_subject(subject(i))
            db.add_object(obj(i))
        for policy in policies:
            db.add_policy(policy)
    return flat, sharded


class TestApiParity:
    """The sharded database answers exactly like the flat one."""

    def test_tables_match(self, pair):
        flat, sharded = pair
        assert set(sharded.subjects) == set(flat.subjects)
        assert set(sharded.objects) == set(flat.objects)
        assert set(sharded.policies) == set(flat.policies)
        assert sharded.subjects["s003"].attributes == flat.subjects["s003"].attributes

    def test_category_queries_match(self, pair):
        flat, sharded = pair
        pred = parse_predicate("position=='staff'")
        assert (
            {r.subject_id for r in sharded.subjects_matching(pred)}
            == {r.subject_id for r in flat.subjects_matching(pred)}
        )
        pred_o = parse_predicate("type=='printer'")
        assert (
            {r.object_id for r in sharded.objects_matching(pred_o)}
            == {r.object_id for r in flat.objects_matching(pred_o)}
        )

    def test_accessibility_queries_match(self, pair):
        flat, sharded = pair
        assert (
            {r.object_id for r in sharded.objects_accessible_by("s001")}
            == {r.object_id for r in flat.objects_accessible_by("s001")}
        )
        assert (
            {r.subject_id for r in sharded.subjects_with_access_to("o001")}
            == {r.subject_id for r in flat.subjects_with_access_to("o001")}
        )

    def test_removal_matches(self, pair):
        flat, sharded = pair
        for db in pair:
            db.remove_subject("s004")
            db.remove_object("o005")
        assert set(sharded.subjects) == set(flat.subjects)
        assert set(sharded.objects) == set(flat.objects)
        with pytest.raises(DatabaseError):
            sharded.remove_subject("s004")
        with pytest.raises(DatabaseError):
            sharded.remove_object("ghost")

    def test_duplicate_registration_rejected(self, pair):
        _, sharded = pair
        with pytest.raises(DatabaseError):
            sharded.add_subject(subject(3))


class TestPlacement:
    def test_org_unit_affinity(self, pair):
        """Records of one department land on one shard."""
        _, sharded = pair
        for d in DEPARTMENTS:
            homes = {
                sharded.shard_of_subject(r.subject_id)
                for r in sharded.subjects.values()
                if r.attributes.get("department") == d
            }
            assert len(homes) == 1

    def test_shard_sizes_cover_fleet(self, pair):
        _, sharded = pair
        assert sum(sharded.shard_sizes().values()) == 60

    def test_match_memo_invalidated_by_churn(self, pair):
        _, sharded = pair
        pred = parse_predicate("position=='staff'")
        before = {r.subject_id for r in sharded.subjects_matching(pred)}
        victim = sorted(before)[0]
        sharded.remove_subject(victim)
        after = {r.subject_id for r in sharded.subjects_matching(pred)}
        assert after == before - {victim}


class TestShardedBackend:
    """A full Backend running on the sharded database."""

    def small_enterprise(self):
        backend = Backend(shards=4)
        backend.add_sensitive_policy("sensitive:s", "sensitive:serves-s")
        backend.add_policy(
            "staff-media", "position=='staff'", "type=='multimedia'", ("play",)
        )
        staff = backend.register_subject(
            "staff-alice", {"position": "staff", "department": "eng"}
        )
        media = backend.register_object(
            "media-1", {"type": "multimedia", "department": "sales"},
            level=2, functions=("play",),
            variants=[("position=='staff'", ("play",))],
        )
        return backend, staff, media

    def test_discovery_runs_on_sharded_backend(self):
        _, staff, media = self.small_enterprise()
        subject_engine = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media)}
        result = run_round(subject_engine, objects)
        assert result.service_ids() == {media.object_id}

    def test_cross_shard_churn_invalidates_tickets(self):
        """The subject and object live on *different* shards; a churn
        push must still bump the object's resumption epoch so its old
        tickets die (§VIII propagation across the shard directory)."""
        backend, staff, media = self.small_enterprise()
        assert (
            backend.database.shard_of_subject("staff-alice")
            != backend.database.shard_of_object("media-1")
        )
        subject_engine = SubjectEngine(staff)
        objects = {media.object_id: ObjectEngine(media, issue_tickets=True)}
        run_round(subject_engine, objects)
        epoch_before = media.resumption_epoch

        churn = ChurnEngine(backend)
        churn.add_policy_with_variant(
            "managers-too", "position=='manager'", "type=='multimedia'", ("play",)
        )
        assert media.resumption_epoch > epoch_before

        result = run_warm_round(subject_engine, objects)
        assert result.service_ids() == {media.object_id}
        assert result.object_ops[media.object_id].total("resumption_reject") == 1

    def test_remove_subject_spans_shards(self):
        backend, staff, media = self.small_enterprise()
        other = backend.register_subject(
            "staff-bob", {"position": "staff", "department": "legal"}
        )
        churn = ChurnEngine(backend)
        report = churn.remove_subject("staff-alice")
        assert "media-1" in report.notified_objects
        assert "staff-alice" not in backend.database.subjects
        assert "staff-bob" in backend.database.subjects
        assert "staff-alice" in media.revoked_subjects
