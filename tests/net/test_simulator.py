"""Discrete-event core tests."""

import pytest

from repro.net.simulator import SimulationBudgetExceeded, Simulator


class TestEventLoop:
    def test_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 2.0] or times == [0.5, 1.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def first():
            hits.append(sim.now)
            sim.schedule(1.0, lambda: hits.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert hits == [1.0, 2.0]

    def test_until_bound(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=2.0)
        assert hits == [1]
        assert sim.pending == 1

    def test_at_absolute(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: sim.at(3.0, lambda: hits.append(sim.now)))
        sim.run()
        assert hits == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=100)


class TestRunBudgetAndPushback:
    def test_budget_resets_per_run_call(self):
        """Back-to-back run() calls each get the full max_events — a long
        experiment driving the clock in windows never inherits a stale
        budget from earlier windows."""
        sim = Simulator()

        def chain(n):
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        chain(80)
        sim.run(until=40.0, max_events=100)
        chain_remaining = sim.pending
        assert chain_remaining == 1
        # Second window: 40 more events would blow a carried-over budget
        # of 100 if _events_processed were cumulative.
        sim.run(max_events=60)
        assert sim.pending == 0

    def test_until_pushback_preserves_event(self):
        """The first event past `until` is pushed back intact: a later
        run() fires it exactly once, in order."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.pending == 1
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 5.0

    def test_pushback_keeps_fifo_for_simultaneous_events(self):
        """Push-back preserves the sequence number, so two events at the
        same time still fire in scheduling order across run() calls."""
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("first"))
        sim.schedule(3.0, lambda: fired.append("second"))
        sim.run(until=1.0)
        assert fired == []
        sim.run()
        assert fired == ["first", "second"]

    def test_exhausted_budget_raise_then_fresh_run_continues(self):
        sim = Simulator()
        counter = []

        def reschedule():
            counter.append(1)
            if len(counter) < 30:
                sim.schedule(0.1, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationBudgetExceeded):
            sim.run(max_events=10)
        sim.run(max_events=25)  # fresh budget finishes the chain
        assert len(counter) == 30
        assert sim.pending == 0
