"""Discrete-event core tests."""

import pytest

from repro.net.simulator import Simulator


class TestEventLoop:
    def test_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 2.0] or times == [0.5, 1.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def first():
            hits.append(sim.now)
            sim.schedule(1.0, lambda: hits.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert hits == [1.0, 2.0]

    def test_until_bound(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=2.0)
        assert hits == [1]
        assert sim.pending == 1

    def test_at_absolute(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: sim.at(3.0, lambda: hits.append(sim.now)))
        sim.run()
        assert hits == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=100)
