"""Tracer tests + trace-based protocol assertions."""

import pytest

from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3
from repro.experiments.common import make_level_fleet
from repro.net.node import GroundNetwork, SimNode
from repro.net.radio import DEFAULT_WIFI
from repro.net.simulator import Simulator
from repro.net.topology import SUBJECT, star
from repro.net.trace import Tracer
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


def _traced_run(level: int, n: int = 3):
    subject_creds, object_creds, _ = make_level_fleet(n, level)
    sim = Simulator()
    net = GroundNetwork(sim, star([c.object_id for c in object_creds]), DEFAULT_WIFI)
    engine = SubjectEngine(subject_creds)
    net.add_node(SimNode(SUBJECT, "subject", NEXUS6, engine))
    for creds in object_creds:
        net.add_node(SimNode(creds.object_id, "object", RASPBERRY_PI3, ObjectEngine(creds)))
    tracer = Tracer().attach(net)
    que1 = engine.start_round()
    sim.schedule(0.0, lambda: net.broadcast(SUBJECT, que1))
    sim.run()
    return tracer, engine


class TestTracer:
    def test_level1_message_shape(self):
        tracer, _ = _traced_run(1, n=3)
        assert tracer.message_types_seen() == {"Que1", "Res1Level1"}
        assert tracer.count("Que1") == 3       # one broadcast, 3 receivers
        assert tracer.count("Res1Level1") == 3

    def test_level2_message_shape(self):
        """The 4-way exchange, exactly once per object."""
        tracer, _ = _traced_run(2, n=3)
        assert tracer.count("Res1") == 3
        assert tracer.count("Que2") == 3
        assert tracer.count("Res2") == 3

    def test_level3_traffic_identical_to_level2(self):
        """On-air message-type histograms are identical across levels —
        the indistinguishability property at trace granularity."""
        t2, _ = _traced_run(2, n=3)
        t3, _ = _traced_run(3, n=3)
        histogram2 = {m: t2.count(m) for m in t2.message_types_seen()}
        histogram3 = {m: t3.count(m) for m in t3.message_types_seen()}
        assert histogram2 == histogram3

    def test_events_time_ordered(self):
        tracer, _ = _traced_run(2, n=2)
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_render(self):
        tracer, _ = _traced_run(1, n=1)
        text = tracer.render()
        assert "Que1" in text and "->" in text
        assert len(tracer.render(limit=2).splitlines()) == 2

    def test_first_lookup(self):
        tracer, _ = _traced_run(2, n=2)
        first_res2 = tracer.first("Res2")
        assert first_res2 is not None
        assert first_res2.dst == SUBJECT
        assert tracer.first("Nonexistent") is None

    def test_hook_chaining_preserved(self):
        """Attaching a tracer must not clobber pre-existing hooks."""
        subject_creds, object_creds, _ = make_level_fleet(1, 1)
        sim = Simulator()
        net = GroundNetwork(sim, star([object_creds[0].object_id]), DEFAULT_WIFI)
        engine = SubjectEngine(subject_creds)
        net.add_node(SimNode(SUBJECT, "subject", NEXUS6, engine))
        net.add_node(SimNode(object_creds[0].object_id, "object",
                             RASPBERRY_PI3, ObjectEngine(object_creds[0])))
        seen = []
        net.on_delivery = lambda t, s, d, m: seen.append(d)
        tracer = Tracer().attach(net)
        que1 = engine.start_round()
        sim.schedule(0.0, lambda: net.broadcast(SUBJECT, que1))
        sim.run()
        assert seen  # original hook still fired
        assert tracer.events
