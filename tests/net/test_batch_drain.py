"""The over-the-air QUE2 batch drain (throughput tentpole, net layer)."""

import pytest

from repro.crypto.workpool import CryptoWorkerPool
from repro.experiments.concurrent_subjects import build_floor
from repro.net.concurrent import simulate_concurrent_discovery
from repro.net.node import GroundNetwork, SimNode


def _run(n_subjects=4, n_objects=2, **kwargs):
    subjects, objects = build_floor(n_subjects, n_objects)
    return simulate_concurrent_discovery(subjects, objects, **kwargs)


class TestBatchDrain:
    def test_batched_round_completes_fully(self):
        timeline = _run(batch_window_s=0.05)
        assert len(timeline.subject_completion) == 4
        assert all(n == 2 for n in timeline.discovered_counts.values())

    def test_batched_with_pool_completes_fully(self):
        with CryptoWorkerPool(2) as pool:
            timeline = _run(batch_window_s=0.05, crypto_pool=pool)
        assert len(timeline.subject_completion) == 4
        assert all(n == 2 for n in timeline.discovered_counts.values())

    def test_more_cores_shrink_makespan(self):
        """Calibrated mode: the batch packs onto the object's compute
        lanes, so a quad-core object finishes the burst sooner."""
        one = _run(n_subjects=6, batch_window_s=0.05, object_cores=1)
        four = _run(n_subjects=6, batch_window_s=0.05, object_cores=4)
        assert len(one.subject_completion) == 6
        assert len(four.subject_completion) == 6
        assert four.makespan < one.makespan

    def test_window_zero_means_serial_path(self):
        """batch_window_s=0 (the default) never touches the queue."""
        serial = _run(batch_window_s=0.0)
        assert len(serial.subject_completion) == 4

    def test_batched_matches_serial_discoveries(self):
        """Same services discovered either way — the drain changes when
        replies go out, never what they contain."""
        serial = _run(seed=7, batch_window_s=0.0)
        batched = _run(seed=7, batch_window_s=0.05)
        assert batched.discovered_counts == serial.discovered_counts

    def test_session_limit_passthrough(self):
        timeline = _run(
            n_subjects=3, batch_window_s=0.05, object_session_limit=64
        )
        assert len(timeline.subject_completion) == 3

    def test_negative_window_rejected(self):
        from repro.net.radio import DEFAULT_WIFI
        from repro.net.simulator import Simulator
        from repro.net.topology import shared_floor

        sim = Simulator()
        graph = shared_floor(["s"], ["o"])
        with pytest.raises(ValueError):
            GroundNetwork(sim, graph, DEFAULT_WIFI, batch_window_s=-0.1)

    def test_invalid_cores_rejected(self):
        from repro.crypto.costmodel import RASPBERRY_PI3

        with pytest.raises(ValueError):
            SimNode("o", "object", RASPBERRY_PI3, None, cores=0)

    def test_crash_reset_clears_pending_batch(self):
        from repro.crypto.costmodel import RASPBERRY_PI3

        node = SimNode("o", "object", RASPBERRY_PI3, None, cores=4)
        node.que2_queue.append(("fake-que2", "peer"))
        node.crash_reset(now=1.0)
        assert node.que2_queue == []


class TestNetworkOwnedPool:
    def test_crypto_workers_spawns_a_warm_owned_pool(self):
        from repro.net.radio import DEFAULT_WIFI
        from repro.net.simulator import Simulator
        from repro.net.topology import shared_floor

        sim = Simulator()
        graph = shared_floor(["s"], ["o"])
        with GroundNetwork(
            sim, graph, DEFAULT_WIFI, crypto_workers=1
        ) as net:
            assert net.crypto_pool is not None
            assert net._owns_pool
        # close() (via __exit__) released the executor.
        assert net.crypto_pool._executor is None

    def test_external_pool_is_not_closed_by_network(self):
        from repro.net.radio import DEFAULT_WIFI
        from repro.net.simulator import Simulator
        from repro.net.topology import shared_floor

        with CryptoWorkerPool(0) as pool:
            sim = Simulator()
            graph = shared_floor(["s"], ["o"])
            with GroundNetwork(sim, graph, DEFAULT_WIFI, crypto_pool=pool):
                pass
            assert pool.run_batch([]) == []  # still usable

    def test_pool_and_workers_are_mutually_exclusive(self):
        from repro.net.radio import DEFAULT_WIFI
        from repro.net.simulator import Simulator
        from repro.net.topology import shared_floor

        with CryptoWorkerPool(0) as pool, pytest.raises(ValueError):
            GroundNetwork(
                Simulator(), shared_floor(["s"], ["o"]), DEFAULT_WIFI,
                crypto_pool=pool, crypto_workers=2,
            )

    def test_round_with_network_owned_workers_completes(self):
        timeline = _run(batch_window_s=0.05, crypto_workers=2)
        assert len(timeline.subject_completion) == 4
        assert all(n == 2 for n in timeline.discovered_counts.values())
