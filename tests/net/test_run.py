"""Simulated discovery runs: completeness, anchors, modes."""

import pytest

from repro.experiments.common import make_level_fleet
from repro.net.node import SizeMode, TimingMode
from repro.net.radio import JITTERY_WIFI
from repro.net.run import simulate_discovery
from repro.net.topology import paper_multihop


class TestCompleteness:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_all_objects_discovered(self, level):
        subject, objects, _ = make_level_fleet(4, level)
        timeline = simulate_discovery(subject, objects)
        assert set(timeline.completion) == {c.object_id for c in objects}

    def test_fellow_sees_covert_over_network(self):
        """The Level 3 covert path works end-to-end through the simulator."""
        subject, objects, _ = make_level_fleet(2, 3)
        timeline = simulate_discovery(subject, objects)
        assert all(s.level_seen == 3 for s in timeline.services)

    def test_multihop_all_discovered(self):
        subject, objects, _ = make_level_fleet(8, 2)
        graph = paper_multihop([c.object_id for c in objects], 4)
        timeline = simulate_discovery(subject, objects, graph=graph)
        assert len(timeline.completion) == 8
        assert set(timeline.hops.values()) == {1, 2, 3, 4}


class TestTimingShape:
    def test_level1_faster_than_level2(self):
        s1, o1, _ = make_level_fleet(5, 1)
        s2, o2, _ = make_level_fleet(5, 2)
        t1 = simulate_discovery(s1, o1).total_time
        t2 = simulate_discovery(s2, o2).total_time
        assert t1 < t2

    def test_levels_2_and_3_indistinguishable_in_time(self):
        """Fig. 6(e): 'Level 2 and Level 3 have overlapped time curves'."""
        s2, o2, _ = make_level_fleet(5, 2)
        s3, o3, _ = make_level_fleet(5, 3)
        t2 = simulate_discovery(s2, o2).total_time
        t3 = simulate_discovery(s3, o3).total_time
        assert t3 == pytest.approx(t2, rel=0.02)

    def test_time_grows_with_object_count(self):
        times = []
        for n in (1, 5, 10):
            subject, objects, _ = make_level_fleet(n, 1)
            times.append(simulate_discovery(subject, objects).total_time)
        assert times == sorted(times)

    def test_latency_grows_with_hops(self):
        subject, objects, _ = make_level_fleet(8, 2)
        graph = paper_multihop([c.object_id for c in objects], 4)
        timeline = simulate_discovery(subject, objects, graph=graph)
        by_hop = timeline.mean_latency_by_hops()
        assert [by_hop[h] for h in (1, 2, 3, 4)] == sorted(by_hop.values())

    def test_paper_anchor_level1_20_objects(self):
        """Fig. 6(e) anchor: 20 Level 1 objects in ~0.25 s (±40%)."""
        subject, objects, _ = make_level_fleet(20, 1)
        total = simulate_discovery(subject, objects).total_time
        assert 0.15 < total < 0.35

    def test_paper_anchor_level2_20_objects(self):
        """Fig. 6(e) anchor: 20 Level 2 objects ~0.63 s (±40%)."""
        subject, objects, _ = make_level_fleet(20, 2)
        total = simulate_discovery(subject, objects).total_time
        assert 0.4 < total < 0.9


class TestModes:
    def test_deterministic_given_seed(self):
        subject, objects, _ = make_level_fleet(3, 2)
        t1 = simulate_discovery(subject, objects, link=JITTERY_WIFI, seed=5)
        subject2, objects2, _ = make_level_fleet(3, 2)
        t2 = simulate_discovery(subject2, objects2, link=JITTERY_WIFI, seed=5)
        assert t1.total_time == pytest.approx(t2.total_time, rel=1e-9)

    def test_jitter_varies_across_seeds(self):
        subject, objects, _ = make_level_fleet(3, 2)
        t1 = simulate_discovery(subject, objects, link=JITTERY_WIFI, seed=1).total_time
        subject2, objects2, _ = make_level_fleet(3, 2)
        t2 = simulate_discovery(subject2, objects2, link=JITTERY_WIFI, seed=2).total_time
        assert t1 != t2

    def test_measured_mode_runs(self):
        subject, objects, _ = make_level_fleet(2, 2)
        timeline = simulate_discovery(subject, objects, timing=TimingMode.MEASURED)
        assert len(timeline.completion) == 2

    def test_actual_size_mode_runs(self):
        subject, objects, _ = make_level_fleet(2, 2)
        timeline = simulate_discovery(subject, objects, sizes=SizeMode.ACTUAL)
        assert len(timeline.completion) == 2

    def test_subject_compute_tracked(self):
        subject, objects, _ = make_level_fleet(3, 2)
        timeline = simulate_discovery(subject, objects)
        assert timeline.subject_compute_s > 0
        assert all(v > 0 for v in timeline.object_compute_s.values())
