"""Retry-layer accounting: give-up counted per exchange, seeded jitter.

Regression tests for two subtle retry-layer bugs:

* an abandoned exchange used to be counted once per *backoff attempt*
  instead of once per exchange, inflating the §IX failure accounting;
* jitter must come from the retry layer's own injected RNG (seeded
  ``(seed & 0xFFFFFFFF) ^ 0x5EED5``) so a chaos run replays exactly
  from its seed — and so the live client can reproduce the same draws.
"""

import random

from repro.experiments.common import make_level_fleet
from repro.net.faults import Fault, FaultKind, FaultSchedule
from repro.net.run import RetryPolicy, simulate_discovery
from repro.protocol.messages import Res1, Res2


def _clean_delivery_times(subject, objects, seed):
    """When RES1 and RES2 reach the subject on an undisturbed run."""
    times = {}

    def on_delivery(t, _src, dst, message):
        if isinstance(message, Res1) and Res1 not in times:
            times[Res1] = t
        elif isinstance(message, Res2) and Res2 not in times:
            times[Res2] = t

    simulate_discovery(subject, objects, seed=seed, on_delivery=on_delivery)
    assert Res1 in times and Res2 in times
    return times[Res1], times[Res2]


class TestGiveUpAccounting:
    def test_abandoned_exchange_counts_once(self):
        """Partition the wire mid-exchange: 1 give-up, not 1 per timer.

        The partition opens between RES1 and RES2 delivery (timed off a
        clean instrumented run), so the subject holds a half-open QUE2
        exchange whose retries can never be answered.  Every retry fires
        — and the abandoned exchange still counts exactly once.
        """
        retry = RetryPolicy(max_retries=3, base_timeout_s=0.3,
                            backoff=2.0, give_up_s=8.0)
        subject, objects, _ = make_level_fleet(1, level=2)
        t_res1, t_res2 = _clean_delivery_times(subject, objects, seed=11)
        midpoint = (t_res1 + t_res2) / 2.0
        schedule = FaultSchedule(
            (Fault(FaultKind.PARTITION, start_s=midpoint),)
        )
        timeline = simulate_discovery(
            subject, objects, faults=schedule, retry=retry,
            max_rounds=1, deadline_s=30.0, seed=11,
        )
        assert timeline.completion == {}
        assert timeline.retransmissions == retry.max_retries
        assert timeline.exchanges_given_up == 1

    def test_every_round_gives_up_once(self):
        """Multi-round: each round's abandoned exchange counts once."""
        retry = RetryPolicy(max_retries=2, base_timeout_s=0.2,
                            backoff=2.0, give_up_s=2.0)
        subject, objects, _ = make_level_fleet(1, level=2)
        t_res1, t_res2 = _clean_delivery_times(subject, objects, seed=13)
        rounds = 3
        schedule = FaultSchedule(
            (Fault(FaultKind.PARTITION, start_s=(t_res1 + t_res2) / 2.0),)
        )
        timeline = simulate_discovery(
            subject, objects, faults=schedule, retry=retry,
            max_rounds=rounds, round_interval_s=4.0,
            deadline_s=30.0, seed=13,
        )
        # Rounds after the first never get a RES1 through the partition,
        # so only round 1 arms a QUE2 exchange — and it is the only
        # give-up, no matter how many timers fired inside it.
        assert timeline.exchanges_given_up == 1
        assert timeline.retransmissions == retry.max_retries


class TestSeededJitter:
    def test_timeout_draws_replay_from_seed(self):
        policy = RetryPolicy(jitter_fraction=0.25)
        a = random.Random((99 & 0xFFFFFFFF) ^ 0x5EED5)
        b = random.Random((99 & 0xFFFFFFFF) ^ 0x5EED5)
        assert [policy.timeout_s(i, a) for i in range(5)] == [
            policy.timeout_s(i, b) for i in range(5)
        ]

    def test_jitter_never_shrinks_backoff(self):
        policy = RetryPolicy(base_timeout_s=0.5, backoff=2.0,
                             jitter_fraction=0.5)
        rng = random.Random(1)
        for attempt in range(4):
            nominal = 0.5 * 2.0 ** attempt
            for _ in range(50):
                drawn = policy.timeout_s(attempt, rng)
                assert nominal <= drawn <= nominal * 1.5

    def test_simulated_chaos_run_is_seed_reproducible(self):
        retry = RetryPolicy(max_retries=3, base_timeout_s=0.3)
        schedule = FaultSchedule(
            (Fault(FaultKind.PARTITION, start_s=0.05),)
        )

        def run():
            subject, objects, _ = make_level_fleet(2, level=2)
            return simulate_discovery(
                subject, objects, faults=schedule, retry=retry,
                max_rounds=2, deadline_s=20.0, seed=21,
            )

        one, two = run(), run()
        assert one.retransmissions == two.retransmissions
        assert one.exchanges_given_up == two.exchanges_given_up
        assert one.messages_lost == two.messages_lost
