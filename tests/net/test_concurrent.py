"""Concurrent multi-subject discovery over one shared channel."""

import pytest

from repro.experiments.concurrent_subjects import build_floor, measure
from repro.net.concurrent import simulate_concurrent_discovery


class TestConcurrentDiscovery:
    def test_every_subject_completes(self):
        timeline = measure(n_subjects=3, n_objects=4)
        assert len(timeline.subject_completion) == 3
        assert all(n == 4 for n in timeline.discovered_counts.values())

    def test_single_subject_matches_baseline_shape(self):
        timeline = measure(n_subjects=1, n_objects=4)
        assert 0.1 < timeline.makespan < 1.5

    def test_contention_slows_everyone(self):
        solo = measure(n_subjects=1, n_objects=4).mean_completion
        crowded = measure(n_subjects=6, n_objects=4).mean_completion
        assert crowded > solo

    def test_makespan_monotone_in_subjects(self):
        makespans = [measure(n, n_objects=3).makespan for n in (1, 3, 6)]
        assert makespans == sorted(makespans)

    def test_stagger_reduces_makespan_noise(self):
        """Staggered starts serialize the bursts: makespan grows, but each
        subject's own completion (relative to its start) is cleaner. We
        only assert both modes complete fully."""
        subjects, objects = build_floor(4, 3)
        burst = simulate_concurrent_discovery(subjects, objects, stagger_s=0.0)
        subjects2, objects2 = build_floor(4, 3)
        staggered = simulate_concurrent_discovery(
            subjects2, objects2, stagger_s=1.0
        )
        assert len(burst.subject_completion) == 4
        assert len(staggered.subject_completion) == 4

    def test_resumed_rediscovery_completes_and_is_faster(self):
        """Warm mode: every subject re-discovers every object over the
        air via RQUE/RRES, and the 2-message exchange beats the 4-way
        handshake's makespan."""
        subjects, objects = build_floor(3, 4)
        first = simulate_concurrent_discovery(subjects, objects, seed=3)
        subjects2, objects2 = build_floor(3, 4)
        again = simulate_concurrent_discovery(
            subjects2, objects2, seed=3, resumption=True
        )
        assert len(again.subject_completion) == 3
        assert all(n == 4 for n in again.discovered_counts.values())
        assert again.makespan < first.makespan

    def test_resumption_flag_without_tickets_degrades_to_full(self):
        """A pure Level 1 fleet yields no tickets; warm mode must still
        complete via the broadcast round."""
        from repro.backend import Backend

        backend = Backend()
        subject = backend.register_subject("warm-s", {"position": "staff"})
        thermo = backend.register_object(
            "warm-t", {"type": "thermometer"}, level=1,
            functions=("read_temperature",),
        )
        timeline = simulate_concurrent_discovery(
            [subject], [thermo], resumption=True
        )
        assert timeline.discovered_counts == {"warm-s": 1}

    def test_objects_keep_sessions_separate(self):
        """Every subject gets her own variant payload — no cross-session
        bleed when an object serves many subjects at once."""
        from repro.backend import Backend
        from repro.net.concurrent import simulate_concurrent_discovery

        backend = Backend()
        a = backend.register_subject("con-a", {"position": "staff"})
        b = backend.register_subject("con-b", {"position": "manager"})
        obj = backend.register_object(
            "con-obj", {"type": "multimedia"}, level=2, functions=("play",),
            variants=[("position=='manager'", ("play", "admin")),
                      ("position=='staff'", ("play",))],
        )
        # run both subjects concurrently against the same engine instance
        timeline = simulate_concurrent_discovery([a, b], [obj])
        assert timeline.discovered_counts == {"con-a": 1, "con-b": 1}
