"""Failure injection: lossy links and multi-round recovery."""

import pytest

from repro.experiments.common import make_level_fleet
from repro.net.node import GroundNetwork, SimNode
from repro.net.radio import LinkModel
from repro.net.run import simulate_discovery
from repro.net.simulator import Simulator
from repro.net.topology import SUBJECT, star
from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3

LOSSY = LinkModel(loss_rate=0.25)
VERY_LOSSY = LinkModel(loss_rate=0.5)


class TestLossModel:
    def test_lossless_by_default(self):
        import random
        link = LinkModel()
        assert not any(link.lost(random.Random(0)) for _ in range(100))

    def test_loss_rate_approximate(self):
        import random
        rng = random.Random(7)
        losses = sum(LOSSY.lost(rng) for _ in range(4000))
        assert 0.2 < losses / 4000 < 0.3

    def test_lost_frames_counted(self):
        sim = Simulator()
        net = GroundNetwork(sim, star(["a"]), VERY_LOSSY, seed=3)
        net.add_node(SimNode(SUBJECT, "subject", NEXUS6))
        net.add_node(SimNode("a", "object", RASPBERRY_PI3))
        from repro.protocol.messages import Que1

        for _ in range(40):
            net.unicast(SUBJECT, "a", Que1(b"n" * 28))
        sim.run()
        assert net.messages_lost > 0

    def test_lost_frame_still_burns_airtime(self):
        """Losses don't free the channel: the radio stays busy."""
        sim = Simulator()
        always_lost = LinkModel(loss_rate=1.0)
        net = GroundNetwork(sim, star(["a"]), always_lost, seed=1)
        net.add_node(SimNode(SUBJECT, "subject", NEXUS6))
        net.add_node(SimNode("a", "object", RASPBERRY_PI3))
        from repro.protocol.messages import Que1

        net.unicast(SUBJECT, "a", Que1(b"n" * 28))
        sim.run()
        assert net.nodes[SUBJECT].radio.busy_until > 0
        assert net.messages_lost == 1


class TestDiscoveryUnderLoss:
    def test_single_round_misses_objects(self):
        subject, objects, _ = make_level_fleet(12, 2)
        timeline = simulate_discovery(
            subject, objects, link=VERY_LOSSY, seed=5, max_rounds=1
        )
        assert len(timeline.completion) < 12

    def test_multi_round_recovers(self):
        subject, objects, _ = make_level_fleet(12, 2)
        timeline = simulate_discovery(
            subject, objects, link=LOSSY, seed=5,
            max_rounds=8, round_interval_s=1.5,
        )
        assert len(timeline.completion) == 12

    def test_rounds_stop_early_when_complete(self):
        """No pointless re-broadcasts once everything is found."""
        subject, objects, _ = make_level_fleet(3, 1)
        timeline = simulate_discovery(
            subject, objects, max_rounds=5, round_interval_s=0.8,
        )
        # lossless: all found in round 1; completion before round 2 fires
        assert timeline.total_time < 0.8
        assert len(timeline.completion) == 3

    def test_level3_covert_survives_loss(self):
        """The covert path also recovers — fellows eventually get flyers."""
        subject, objects, _ = make_level_fleet(4, 3)
        timeline = simulate_discovery(
            subject, objects, link=LOSSY, seed=9,
            max_rounds=20, round_interval_s=1.0,
        )
        assert len(timeline.completion) == 4
        assert all(s.level_seen == 3 for s in timeline.services)

    def test_recovery_time_increases_with_loss(self):
        subject, objects, _ = make_level_fleet(8, 2)
        clean = simulate_discovery(subject, objects, seed=3).total_time
        subject2, objects2, _ = make_level_fleet(8, 2)
        lossy = simulate_discovery(
            subject2, objects2, link=LOSSY, seed=3,
            max_rounds=8, round_interval_s=1.0,
        ).total_time
        assert lossy > clean
