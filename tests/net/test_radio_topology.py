"""Link model and topology tests."""

import random

import pytest

from repro.net.radio import DEFAULT_WIFI, JITTERY_WIFI, LinkModel, Radio
from repro.net.topology import SUBJECT, hop_distance, multihop, paper_multihop, star


class TestLinkModel:
    def test_occupancy_grows_with_size(self):
        assert DEFAULT_WIFI.occupancy(1000) > DEFAULT_WIFI.occupancy(100)

    def test_occupancy_formula(self):
        link = LinkModel(frame_overhead_s=0.01, bitrate_bps=1000)
        assert link.occupancy(500) == pytest.approx(0.01 + 0.5)

    def test_jitter_varies(self):
        rng = random.Random(1)
        samples = {JITTERY_WIFI.occupancy(500, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_jitter_never_negative(self):
        rng = random.Random(2)
        assert all(JITTERY_WIFI.occupancy(10, rng) > 0 for _ in range(200))

    def test_no_jitter_deterministic(self):
        rng = random.Random(3)
        assert DEFAULT_WIFI.occupancy(500, rng) == DEFAULT_WIFI.occupancy(500)


class TestRadio:
    def test_reserve_serializes(self):
        radio = Radio("r")
        s1, e1 = radio.reserve(0.0, 1.0)
        s2, e2 = radio.reserve(0.5, 1.0)
        assert (s1, e1) == (0.0, 1.0)
        assert (s2, e2) == (1.0, 2.0)  # queued behind the first


class TestTopology:
    def test_star(self):
        g = star(["a", "b", "c"])
        assert all(hop_distance(g, o) == 1 for o in ("a", "b", "c"))

    def test_multihop_distances(self):
        g = multihop([["a", "b"], ["c"], ["d"]])
        assert hop_distance(g, "a") == 1
        assert hop_distance(g, "c") == 2
        assert hop_distance(g, "d") == 3

    def test_relay_roles(self):
        g = multihop([["a"], ["b"], ["c"]])
        relays = [n for n, d in g.nodes(data=True) if d.get("role") == "relay"]
        assert relays == ["relay-1", "relay-2"]

    def test_paper_multihop_split(self):
        g = paper_multihop([f"o{i}" for i in range(20)], 4)
        by_hop = {}
        for i in range(20):
            by_hop.setdefault(hop_distance(g, f"o{i}"), []).append(i)
        assert {h: len(v) for h, v in by_hop.items()} == {1: 5, 2: 5, 3: 5, 4: 5}

    def test_paper_multihop_leftovers(self):
        g = paper_multihop([f"o{i}" for i in range(7)], 2)
        hops = [hop_distance(g, f"o{i}") for i in range(7)]
        assert hops.count(1) == 3 and hops.count(2) == 4

    def test_too_few_objects_rejected(self):
        with pytest.raises(ValueError):
            paper_multihop(["a"], 4)

    def test_subject_present(self):
        assert SUBJECT in star(["a"])
