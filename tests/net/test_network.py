"""GroundNetwork: routing, contention, broadcast flooding, sizes."""

import pytest

from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3
from repro.net.node import GroundNetwork, SimNode, SizeMode, message_size
from repro.net.radio import LinkModel
from repro.net.simulator import Simulator
from repro.net.topology import SUBJECT, multihop, star
from repro.protocol.messages import Que1, Que2, Res1, Res1Level1, Res2

LINK = LinkModel(access_delay_s=0.01, frame_overhead_s=0.001, bitrate_bps=1e6)


def make_net(graph):
    sim = Simulator()
    net = GroundNetwork(sim, graph, LINK)
    for name, data in graph.nodes(data=True):
        role = data.get("role", "object")
        profile = NEXUS6 if role == "subject" else RASPBERRY_PI3
        net.add_node(SimNode(name, role, profile))
    return sim, net


class TestMessageSize:
    def test_nominal_sizes(self):
        assert message_size(Que1(b"n" * 28), SizeMode.NOMINAL) == 28
        assert message_size(Res1Level1(b"p"), SizeMode.NOMINAL) == 200
        assert message_size(Res1(b"n" * 28, b"c", b"k", b"s"), SizeMode.NOMINAL) == 772
        assert message_size(
            Que2(b"p", b"c", b"k", b"s", b"m" * 32, b"m" * 32), SizeMode.NOMINAL
        ) == 1008
        assert message_size(
            Que2(b"p", b"c", b"k", b"s", b"m" * 32, None), SizeMode.NOMINAL
        ) == 976
        assert message_size(Res2(b"ct", b"m" * 32), SizeMode.NOMINAL) == 280

    def test_actual_sizes(self):
        q = Que1(b"n" * 28)
        assert message_size(q, SizeMode.ACTUAL) == len(q.to_bytes())

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            message_size(object(), SizeMode.NOMINAL)


class TestDelivery:
    def test_unicast_single_hop(self):
        sim, net = make_net(star(["a"]))
        deliveries = []
        net.on_delivery = lambda t, s, d, m: deliveries.append((t, s, d))
        net.unicast(SUBJECT, "a", Que1(b"n" * 28))
        sim.run()
        assert len(deliveries) == 1
        (t, s, d) = deliveries[0]
        assert (s, d) == (SUBJECT, "a")
        expected = LINK.access_delay_s + LINK.occupancy(28)
        assert t == pytest.approx(expected)

    def test_unicast_multihop_latency_scales(self):
        graph = multihop([["near"], ["far"]])
        sim, net = make_net(graph)
        times = {}
        net.on_delivery = lambda t, s, d, m: times.setdefault(d, t)
        net.unicast(SUBJECT, "near", Que1(b"a" * 28))
        sim.run()
        t_near = times["near"]
        sim2, net2 = make_net(graph)
        times2 = {}
        net2.on_delivery = lambda t, s, d, m: times2.setdefault(d, t)
        net2.unicast(SUBJECT, "far", Que1(b"a" * 28))
        sim2.run()
        assert times2["far"] > 1.8 * t_near

    def test_unicast_peer_id_is_origin(self):
        """Replies from hop-2 objects must see the subject, not the relay."""
        graph = multihop([[], ["deep"]])
        sim, net = make_net(graph)
        seen = []
        net.on_delivery = lambda t, s, d, m: seen.append((s, d))
        net.unicast(SUBJECT, "deep", Que1(b"a" * 28))
        sim.run()
        assert (SUBJECT, "deep") in seen

    def test_contention_serializes_on_shared_radio(self):
        sim, net = make_net(star(["a", "b", "c"]))
        times = {}
        net.on_delivery = lambda t, s, d, m: times.setdefault(d, t)
        for dst in ("a", "b", "c"):
            net.unicast(SUBJECT, dst, Res1Level1(b"x" * 200))
        sim.run()
        sorted_times = sorted(times.values())
        occ = LINK.occupancy(200)
        # deliveries must be spaced by at least one occupancy window
        assert sorted_times[1] - sorted_times[0] == pytest.approx(occ, rel=0.01)
        assert sorted_times[2] - sorted_times[1] == pytest.approx(occ, rel=0.01)


class TestBroadcast:
    def test_reaches_all_star_nodes(self):
        sim, net = make_net(star(["a", "b", "c"]))
        got = set()
        net.on_delivery = lambda t, s, d, m: got.add(d)
        net.broadcast(SUBJECT, Que1(b"q" * 28))
        sim.run()
        assert got == {"a", "b", "c"}

    def test_relays_rebroadcast_once(self):
        graph = multihop([["a"], ["b"], ["c"]])
        sim, net = make_net(graph)
        got = []
        net.on_delivery = lambda t, s, d, m: got.append(d)
        net.broadcast(SUBJECT, Que1(b"q" * 28))
        sim.run()
        # each object receives exactly once (relays dedup)
        for obj in ("a", "b", "c"):
            assert got.count(obj) == 1

    def test_single_transmission_per_neighborhood(self):
        """Wireless broadcast: the subject transmits ONCE for all
        one-hop neighbors."""
        sim, net = make_net(star(["a", "b", "c"]))
        net.broadcast(SUBJECT, Que1(b"q" * 28))
        sim.run()
        assert net.nodes[SUBJECT].radio.messages_sent == 1
