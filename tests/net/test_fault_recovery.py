"""The recovery stack end to end: retries, rounds, and chaos schedules."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.common import make_level_fleet
from repro.net.faults import Fault, FaultKind, FaultSchedule, burst_loss_schedule
from repro.net.run import RetryPolicy, simulate_discovery


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError, match="base_timeout_s"):
            RetryPolicy(base_timeout_s=0.0)

    def test_backoff_grows_exponentially(self):
        import random

        policy = RetryPolicy(base_timeout_s=1.0, backoff=2.0, jitter_fraction=0.0)
        rng = random.Random(0)
        assert policy.timeout_s(0, rng) == 1.0
        assert policy.timeout_s(1, rng) == 2.0
        assert policy.timeout_s(2, rng) == 4.0

    def test_jitter_bounded(self):
        import random

        policy = RetryPolicy(base_timeout_s=1.0, jitter_fraction=0.2)
        rng = random.Random(1)
        draws = [policy.timeout_s(0, rng) for _ in range(50)]
        assert all(1.0 <= d <= 1.2 for d in draws)


class TestRetransmissionRecovery:
    def test_retries_recover_within_single_round(self):
        """Seed pinned so the no-retry run deterministically loses a
        QUE2/RES2 exchange the retry layer then recovers — without
        spending a whole extra round."""
        subject_creds, object_creds, _ = make_level_fleet(10, level=2)
        schedule = burst_loss_schedule(0.20, seed=2)
        bare = simulate_discovery(
            subject_creds, object_creds, faults=schedule, max_rounds=1, seed=2
        )
        retried = simulate_discovery(
            subject_creds, object_creds, faults=schedule,
            retry=RetryPolicy(), max_rounds=1, seed=2,
        )
        assert len(bare.completion) < len(object_creds)
        assert len(retried.completion) == len(object_creds)
        assert retried.retransmissions > 0

    def test_retry_count_bounded(self):
        subject_creds, object_creds, _ = make_level_fleet(6, level=2)
        policy = RetryPolicy(max_retries=2)
        timeline = simulate_discovery(
            subject_creds, object_creds,
            faults=burst_loss_schedule(0.4, seed=1),
            retry=policy, max_rounds=1, seed=1, deadline_s=20.0,
        )
        # per exchange at most max_retries re-sends; rounds can re-arm,
        # but with one round the global bound is objects x max_retries.
        assert timeline.retransmissions <= len(object_creds) * policy.max_retries

    def test_no_retransmissions_on_clean_network(self):
        subject_creds, object_creds, _ = make_level_fleet(6, level=2)
        timeline = simulate_discovery(
            subject_creds, object_creds, retry=RetryPolicy(), seed=0
        )
        assert len(timeline.completion) == len(object_creds)
        assert timeline.retransmissions == 0

    def test_identical_schedule_identical_timeline(self):
        """The determinism acceptance criterion: same seed + same
        FaultSchedule reproduce the exact timeline, retries included."""
        subject_creds, object_creds, _ = make_level_fleet(8, level=2)
        schedule = burst_loss_schedule(0.25, seed=6)

        def once():
            timeline = simulate_discovery(
                subject_creds, object_creds, faults=schedule,
                retry=RetryPolicy(), max_rounds=4, seed=6,
            )
            return (
                timeline.completion,
                timeline.retransmissions,
                timeline.messages_lost,
                timeline.total_time,
            )

        assert once() == once()

    def test_faulty_run_does_not_perturb_faultless_rng(self):
        """Installing a fault layer must not change the link model's
        draws: a fault-free schedule reproduces the no-faults timeline."""
        subject_creds, object_creds, _ = make_level_fleet(6, level=2)
        bare = simulate_discovery(subject_creds, object_creds, seed=3)
        shadowed = simulate_discovery(
            subject_creds, object_creds, seed=3,
            faults=FaultSchedule(()),  # installed, but nothing scheduled
        )
        assert bare.completion == shadowed.completion


#: Below these severities the recovery stack must always win (the
#: Hypothesis contract): modest bursty loss, duplication, reordering,
#: delay spikes in any combination.
_fault_entry = st.one_of(
    st.builds(
        lambda sev: burst_loss_schedule(sev).entries[0],
        st.floats(min_value=0.01, max_value=0.20),
    ),
    st.builds(
        lambda sev: Fault(FaultKind.DUPLICATION, severity=sev),
        st.floats(min_value=0.0, max_value=0.4),
    ),
    st.builds(
        lambda sev, d: Fault(FaultKind.REORDER, severity=sev, extra_delay_s=d),
        st.floats(min_value=0.0, max_value=0.4),
        st.floats(min_value=0.0, max_value=0.3),
    ),
    st.builds(
        lambda d: Fault(FaultKind.DELAY_SPIKE, extra_delay_s=d),
        st.floats(min_value=0.0, max_value=0.3),
    ),
)

_FLEET = None


def _fleet():
    global _FLEET
    if _FLEET is None:
        _FLEET = make_level_fleet(4, level=2)
    return _FLEET


class TestScheduleProperty:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        entries=st.lists(
            _fault_entry, min_size=1, max_size=3,
            unique_by=lambda fault: fault.kind,  # the bound is per kind:
            # stacking e.g. two burst-loss entries multiplies loss past it
        ),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_bounded_schedules_always_complete(self, entries, seed):
        """Any schedule under the severity bound: retry-enabled discovery
        finds every object before the deadline, deterministically."""
        subject_creds, object_creds, _ = _fleet()
        # round_interval_s must exceed the worst-case faulty RTT (~1.3s
        # under a 0.3s delay spike): a re-broadcast discards in-flight
        # exchanges, so rounds faster than the RTT destroy the very
        # handshakes they back up (docs/robustness.md, "sizing the
        # outer loop").
        timeline = simulate_discovery(
            subject_creds, object_creds,
            faults=FaultSchedule(tuple(entries), seed=seed),
            retry=RetryPolicy(), max_rounds=9, round_interval_s=3.0,
            deadline_s=30.0, seed=seed,
        )
        assert len(timeline.completion) == len(object_creds)
        assert timeline.total_time <= 30.0
