"""Randomized building layouts: discovery is topology-agnostic."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.common import make_level_fleet
from repro.net.run import simulate_discovery
from repro.net.topology import SUBJECT, hop_distance, random_building


class TestRandomBuilding:
    def test_connected(self):
        import networkx as nx

        graph = random_building([f"o{i}" for i in range(10)], n_relays=4, seed=1)
        assert nx.is_connected(graph)

    def test_deterministic_per_seed(self):
        ids = [f"o{i}" for i in range(6)]
        a = random_building(ids, seed=3)
        b = random_building(ids, seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_seeds_differ(self):
        ids = [f"o{i}" for i in range(6)]
        edge_sets = {frozenset(random_building(ids, seed=s).edges()) for s in range(6)}
        assert len(edge_sets) > 1

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n_relays=st.integers(min_value=0, max_value=6))
    def test_every_layout_supports_full_discovery(self, seed, n_relays):
        """Whatever tree the generator produces, all objects get found."""
        subject, objects, _ = _FLEET
        graph = random_building(
            [c.object_id for c in objects], n_relays=n_relays, seed=seed
        )
        timeline = simulate_discovery(subject, objects, graph=graph)
        assert len(timeline.completion) == len(objects)

    def test_deeper_objects_slower(self):
        subject, objects, _ = _FLEET
        graph = random_building([c.object_id for c in objects], n_relays=5, seed=7)
        timeline = simulate_discovery(subject, objects, graph=graph)
        # completion times correlate with hop distance: farthest >= nearest
        by_hops = timeline.mean_latency_by_hops()
        hops = sorted(by_hops)
        assert by_hops[hops[-1]] >= by_hops[hops[0]]


# One shared fleet: key generation dominates test time otherwise.
_FLEET = make_level_fleet(5, 2)
