"""The fault layer itself: vocabulary, determinism, and each fault kind."""

import math
import random

import pytest

from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3
from repro.experiments.common import make_level_fleet
from repro.net.faults import (
    Fault,
    FaultKind,
    FaultLayer,
    FaultSchedule,
    UpdateOutageBuffer,
    burst_loss_schedule,
)
from repro.net.node import GroundNetwork, SimNode
from repro.net.radio import DEFAULT_WIFI, LinkModel
from repro.net.run import simulate_discovery
from repro.net.simulator import SimulationBudgetExceeded, Simulator
from repro.net.topology import SUBJECT, star


class TestFaultValidation:
    def test_window_order_enforced(self):
        with pytest.raises(ValueError, match="ends before"):
            Fault(FaultKind.BURST_LOSS, start_s=2.0, stop_s=1.0)

    def test_probabilities_bounded(self):
        with pytest.raises(ValueError, match="severity"):
            Fault(FaultKind.DUPLICATION, severity=1.5)
        with pytest.raises(ValueError, match="p_enter_burst"):
            Fault(FaultKind.BURST_LOSS, p_enter_burst=-0.1)

    def test_crash_needs_targets_and_restart(self):
        with pytest.raises(ValueError, match="target nodes"):
            Fault(FaultKind.CRASH, stop_s=5.0)
        with pytest.raises(ValueError, match="restart"):
            Fault(FaultKind.CRASH, nodes=("a",))

    def test_targets_hop_semantics(self):
        everywhere = Fault(FaultKind.BURST_LOSS)
        assert everywhere.targets_hop("a", "b")
        by_node = Fault(FaultKind.BURST_LOSS, nodes=("a",))
        assert by_node.targets_hop("a", "b")
        assert by_node.targets_hop("b", "a")
        assert not by_node.targets_hop("b", "c")
        by_link = Fault(FaultKind.PARTITION, links=(("a", "b"),))
        assert by_link.targets_hop("b", "a")  # unordered pair
        assert not by_link.targets_hop("a", "c")

    def test_burst_schedule_hits_requested_mean(self):
        for mean in (0.05, 0.2, 0.4):
            schedule = burst_loss_schedule(mean)
            assert math.isclose(schedule.entries[0].mean_loss, mean)

    def test_burst_schedule_rejects_unreachable_mean(self):
        with pytest.raises(ValueError, match="mean_loss"):
            burst_loss_schedule(0.95, severity=0.9)


class TestDeterminism:
    def test_same_seed_same_fates(self):
        schedule = burst_loss_schedule(0.3, seed=2)

        def fates(n=200):
            layer = FaultLayer(schedule, seed=5)
            return [
                (f.dropped, f.duplicate, f.extra_delay_s, f.corrupt)
                for f in (layer.frame_fate("s", "o", 1.0) for _ in range(n))
            ]

        assert fates() == fates()

    def test_different_seed_different_fates(self):
        schedule = burst_loss_schedule(0.3, seed=2)

        def run(seed):
            layer = FaultLayer(schedule, seed=seed)
            return tuple(
                layer.frame_fate("s", "o", 1.0).dropped for _ in range(60)
            )

        assert len({run(s) for s in range(4)}) > 1

    def test_empirical_loss_near_mean(self):
        schedule = burst_loss_schedule(0.2, seed=0)
        layer = FaultLayer(schedule, seed=0)
        n = 6000
        lost = sum(
            layer.frame_fate("s", "o", 1.0).dropped for _ in range(n)
        )
        assert 0.15 < lost / n < 0.25

    def test_loss_is_bursty_not_iid(self):
        """Consecutive losses correlate: far more runs-of-loss than an
        i.i.d. process at the same rate would produce."""
        schedule = burst_loss_schedule(0.2, seed=0, severity=0.95)
        layer = FaultLayer(schedule, seed=0)
        drops = [layer.frame_fate("s", "o", 1.0).dropped for _ in range(6000)]
        pairs = sum(a and b for a, b in zip(drops, drops[1:]))
        rate = sum(drops) / len(drops)
        iid_pairs = rate * rate * len(drops)
        assert pairs > 2 * iid_pairs


def tiny_net(faults=None, link=DEFAULT_WIFI):
    sim = Simulator()
    net = GroundNetwork(sim, star(["a"]), link, seed=1, faults=faults)
    net.add_node(SimNode(SUBJECT, "subject", NEXUS6))
    net.add_node(SimNode("a", "object", RASPBERRY_PI3))
    return sim, net


class TestFaultKindsOnTheWire:
    def test_partition_blocks_window_only(self):
        from repro.protocol.messages import Que1

        schedule = FaultSchedule(
            (Fault(FaultKind.PARTITION, start_s=0.0, stop_s=10.0,
                   links=((SUBJECT, "a"),)),)
        )
        sim, net = tiny_net(schedule)
        delivered = []
        net.on_delivery = lambda t, s, d, m: delivered.append(t)
        net.unicast(SUBJECT, "a", Que1(b"n" * 28))
        sim.run()
        assert not delivered  # inside the window: dropped
        sim.at(11.0, lambda: net.unicast(SUBJECT, "a", Que1(b"m" * 28)))
        sim.run()
        assert delivered  # after stop_s the link heals

    def test_duplication_delivers_twice(self):
        from repro.protocol.messages import Que1

        schedule = FaultSchedule((Fault(FaultKind.DUPLICATION, severity=1.0),))
        sim, net = tiny_net(schedule)
        delivered = []
        net.on_delivery = lambda t, s, d, m: delivered.append(m)
        net.unicast(SUBJECT, "a", Que1(b"n" * 28))
        sim.run()
        assert len(delivered) == 2
        assert delivered[0].to_bytes() == delivered[1].to_bytes()

    def test_delay_spike_shifts_arrival(self):
        from repro.protocol.messages import Que1

        base_times, spiked_times = [], []
        for times, schedule in (
            (base_times, None),
            (spiked_times, FaultSchedule(
                (Fault(FaultKind.DELAY_SPIKE, extra_delay_s=0.5),)
            )),
        ):
            sim, net = tiny_net(schedule)
            net.on_delivery = lambda t, s, d, m, acc=times: acc.append(t)
            net.unicast(SUBJECT, "a", Que1(b"n" * 28))
            sim.run()
        assert spiked_times[0] == pytest.approx(base_times[0] + 0.5)

    def test_corruption_recorded_not_fatal(self, staff, media):
        """A corrupted frame reaches a real engine as an error record."""
        subject_creds, object_creds, _ = make_level_fleet(3, level=2)
        schedule = FaultSchedule(
            (Fault(FaultKind.CORRUPTION, severity=1.0),), seed=4
        )
        timeline = simulate_discovery(
            subject_creds, object_creds, faults=schedule, seed=4,
            deadline_s=5.0,
        )
        assert timeline.completion == {}  # every frame mangled

    def test_crash_window_drops_and_restarts(self):
        from repro.protocol.messages import Que1

        schedule = FaultSchedule(
            (Fault(FaultKind.CRASH, start_s=0.0, stop_s=2.0, nodes=("a",)),)
        )
        sim, net = tiny_net(schedule)
        delivered = []
        net.on_delivery = lambda t, s, d, m: delivered.append(t)
        net.unicast(SUBJECT, "a", Que1(b"n" * 28))
        sim.run()
        assert not delivered
        assert net.nodes["a"].stats.crashes == 1
        sim.at(3.0, lambda: net.unicast(SUBJECT, "a", Que1(b"m" * 28)))
        sim.run()
        assert delivered  # back up after the restart

    def test_crashed_object_rejoins_cold_and_completes(self):
        subject_creds, object_creds, _ = make_level_fleet(4, level=2)
        victim = object_creds[0].object_id
        schedule = FaultSchedule(
            (Fault(FaultKind.CRASH, start_s=0.1, stop_s=1.5, nodes=(victim,)),)
        )
        timeline = simulate_discovery(
            subject_creds, object_creds, faults=schedule, seed=2,
            max_rounds=6, round_interval_s=1.0, deadline_s=20.0,
        )
        assert victim in timeline.completion
        assert timeline.completion[victim] > 1.5  # only after the restart


class TestBackendOutage:
    class FakeReceiver:
        def __init__(self):
            self.applied = []

        def apply(self, message):
            self.applied.append(message)
            return True

    def test_pushes_buffer_across_outage(self):
        schedule = FaultSchedule(
            (Fault(FaultKind.BACKEND_OUTAGE, start_s=1.0, stop_s=5.0),)
        )
        receiver = self.FakeReceiver()
        buffer = UpdateOutageBuffer(receiver, schedule)
        assert buffer.deliver("u1", now=0.5)       # plane up: applied
        assert not buffer.deliver("u2", now=2.0)   # outage: queued
        assert not buffer.deliver("u3", now=4.0)
        assert receiver.applied == ["u1"]
        assert buffer.deliver("u4", now=6.0)       # healed: flush + apply
        assert receiver.applied == ["u1", "u2", "u3", "u4"]  # publish order
        assert buffer.deferred == 2

    def test_flush_noop_while_down(self):
        schedule = FaultSchedule(
            (Fault(FaultKind.BACKEND_OUTAGE, start_s=0.0, stop_s=5.0),)
        )
        buffer = UpdateOutageBuffer(self.FakeReceiver(), schedule)
        buffer.deliver("u1", now=1.0)
        assert buffer.flush(now=2.0) == 0
        assert buffer.flush(now=6.0) == 1

    class SeqMsg:
        """A stand-in push with the wire messages' sequence attribute."""

        def __init__(self, sequence):
            self.sequence = sequence

        def __repr__(self):
            return f"SeqMsg({self.sequence})"

    def test_overlapping_outage_and_crash_drains_exactly_once(self):
        """A node crashed *through* an outage rejoins to each push once.

        Regression: the outage window heals at t=10 while the crash
        window runs to t=15 — flushing at the first heal would deliver
        into a dead device; retry-duplicates queued during the outage
        used to be buffered again and drain twice.
        """
        schedule = FaultSchedule((
            Fault(FaultKind.BACKEND_OUTAGE, start_s=0.0, stop_s=10.0),
            Fault(FaultKind.CRASH, start_s=5.0, stop_s=15.0, nodes=("dev",)),
        ))
        receiver = self.FakeReceiver()
        buffer = UpdateOutageBuffer(receiver, schedule, node="dev")
        m1, m2 = self.SeqMsg(1), self.SeqMsg(2)
        assert not buffer.deliver(m1, now=2.0)   # outage: queued
        assert not buffer.deliver(m1, now=3.0)   # publisher retry: dropped
        assert buffer.duplicates_suppressed == 1
        assert not buffer.deliver(m2, now=6.0)   # outage AND crash
        # Backend healed, node still down: nothing may flush yet.
        assert buffer.flush(now=12.0) == 0
        assert receiver.applied == []
        # Cold rejoin: everything drains, in publish order, exactly once.
        assert buffer.flush(now=15.0) == 2
        assert receiver.applied == [m1, m2]
        assert buffer.delivered == 2

    def test_partition_window_also_blocks_delivery(self):
        """Reachability is the conjunction: backend up AND node linked."""
        schedule = FaultSchedule(
            (Fault(FaultKind.PARTITION, start_s=0.0, stop_s=4.0,
                   nodes=("dev",)),)
        )
        receiver = self.FakeReceiver()
        buffer = UpdateOutageBuffer(receiver, schedule, node="dev")
        m1 = self.SeqMsg(1)
        assert not buffer.deliver(m1, now=1.0)  # backend fine, path cut
        assert receiver.applied == []
        assert buffer.deliver(self.SeqMsg(2), now=5.0)
        assert [m.sequence for m in receiver.applied] == [1, 2]

    def test_node_none_skips_node_windows(self):
        schedule = FaultSchedule(
            (Fault(FaultKind.CRASH, start_s=0.0, stop_s=9.0,
                   nodes=("dev",)),)
        )
        receiver = self.FakeReceiver()
        buffer = UpdateOutageBuffer(receiver, schedule)  # node unknown
        assert buffer.deliver(self.SeqMsg(1), now=1.0)
        assert len(receiver.applied) == 1


class TestSatelliteFixes:
    def test_lossy_link_without_rng_raises(self):
        """The silent no-loss footgun: loss_rate > 0 demands an rng."""
        with pytest.raises(ValueError, match="rng"):
            LinkModel(loss_rate=0.3).lost(None)

    def test_lossless_link_tolerates_missing_rng(self):
        assert LinkModel().lost(None) is False
        assert LinkModel(loss_rate=0.3).lost(random.Random(0)) in (True, False)

    def test_budget_exception_carries_context(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.1, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationBudgetExceeded) as excinfo:
            sim.run(max_events=25)
        assert excinfo.value.events_processed == 25
        assert excinfo.value.max_events == 25
        assert excinfo.value.now >= 0.0
        assert isinstance(excinfo.value, RuntimeError)  # old guards still work

    def test_max_events_plumbed_through_simulate_discovery(self):
        subject_creds, object_creds, _ = make_level_fleet(3, level=1)
        with pytest.raises(SimulationBudgetExceeded):
            simulate_discovery(
                subject_creds, object_creds, max_events=3, deadline_s=5.0
            )
