"""ConcurrentTimeline helpers and shared_floor topology unit tests."""

import pytest

from repro.net.concurrent import ConcurrentTimeline
from repro.net.topology import shared_floor


class TestConcurrentTimeline:
    def test_makespan_and_mean(self):
        timeline = ConcurrentTimeline(
            subject_completion={"a": 1.0, "b": 3.0}, discovered_counts={"a": 2, "b": 2}
        )
        assert timeline.makespan == 3.0
        assert timeline.mean_completion == 2.0

    def test_empty_timeline(self):
        timeline = ConcurrentTimeline()
        assert timeline.makespan == 0.0
        assert timeline.mean_completion == 0.0


class TestSharedFloor:
    def test_all_subjects_hear_all_objects(self):
        graph = shared_floor(["s1", "s2"], ["o1", "o2", "o3"])
        for subject in ("s1", "s2"):
            assert set(graph.neighbors(subject)) == {"o1", "o2", "o3"}

    def test_subjects_not_directly_linked(self):
        graph = shared_floor(["s1", "s2"], ["o1"])
        assert not graph.has_edge("s1", "s2")

    def test_roles(self):
        graph = shared_floor(["s1"], ["o1"])
        assert graph.nodes["s1"]["role"] == "subject"
        assert graph.nodes["o1"]["role"] == "object"
