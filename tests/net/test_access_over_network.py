"""End-to-end over the simulator: discover, then command, all on the air."""

import pytest

from repro.access import CommandClient, CommandHandler
from repro.backend import Backend
from repro.crypto.costmodel import NEXUS6, RASPBERRY_PI3
from repro.net.node import GroundNetwork, SimNode
from repro.net.radio import DEFAULT_WIFI
from repro.net.simulator import Simulator
from repro.net.topology import SUBJECT, multihop, star
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine


def _build(graph, subject_creds, object_creds_list, implementations):
    sim = Simulator()
    net = GroundNetwork(sim, graph, DEFAULT_WIFI)
    subject_engine = SubjectEngine(subject_creds)
    subject_node = SimNode(SUBJECT, "subject", NEXUS6, subject_engine)
    subject_node.command_client = CommandClient(subject_engine)
    net.add_node(subject_node)
    for creds in object_creds_list:
        engine = ObjectEngine(creds)
        node = SimNode(creds.object_id, "object", RASPBERRY_PI3, engine)
        node.command_handler = CommandHandler(engine)
        for fn, impl in implementations.items():
            node.command_handler.register(fn, impl)
        net.add_node(node)
    for name, data in graph.nodes(data=True):
        if data.get("role") == "relay":
            net.add_node(SimNode(name, "relay", RASPBERRY_PI3))
    return sim, net, subject_engine, subject_node


@pytest.fixture
def lock_world():
    backend = Backend()
    manager = backend.register_subject("mgr", {"position": "manager"})
    lock = backend.register_object(
        "lock-1", {"type": "door lock"}, level=2, functions=("open",),
        variants=[("position=='manager'", ("open", "close"))],
    )
    return manager, lock


class TestAccessOverNetwork:
    def test_discover_then_command(self, lock_world):
        manager, lock = lock_world
        graph = star(["lock-1"])
        sim, net, engine, subject_node = _build(
            graph, manager, [lock], {"open": lambda args: b"door opened"}
        )

        que1 = engine.start_round()
        sim.schedule(0.0, lambda: net.broadcast(SUBJECT, que1))
        sim.run()
        assert "lock-1" in engine.established

        command = subject_node.command_client.build_command("lock-1", "open")
        sim.schedule(0.0, lambda: net.unicast(SUBJECT, "lock-1", command))
        sim.run()
        assert subject_node.command_results
        _, peer, payload = subject_node.command_results[-1]
        assert (peer, payload) == ("lock-1", b"door opened")

    def test_command_latency_accumulates(self, lock_world):
        """The command round trip costs real simulated time after the
        discovery finished."""
        manager, lock = lock_world
        sim, net, engine, subject_node = _build(
            star(["lock-1"]), manager, [lock], {"open": lambda args: b"ok"}
        )
        que1 = engine.start_round()
        sim.schedule(0.0, lambda: net.broadcast(SUBJECT, que1))
        sim.run()
        t_discovery = sim.now
        command = subject_node.command_client.build_command("lock-1", "open")
        net.unicast(SUBJECT, "lock-1", command)
        sim.run()
        assert sim.now > t_discovery + 0.05  # two more airtime legs

    def test_command_over_multihop(self, lock_world):
        manager, lock = lock_world
        graph = multihop([[], ["lock-1"]])  # lock is 2 hops away
        sim, net, engine, subject_node = _build(
            graph, manager, [lock], {"open": lambda args: b"ok"}
        )
        que1 = engine.start_round()
        sim.schedule(0.0, lambda: net.broadcast(SUBJECT, que1))
        sim.run()
        command = subject_node.command_client.build_command("lock-1", "open")
        net.unicast(SUBJECT, "lock-1", command)
        sim.run()
        assert subject_node.command_results[-1][2] == b"ok"

    def test_denied_command_over_network(self, lock_world):
        """An ungranted function comes back as an authenticated denial;
        the client records the failure without crashing the simulation."""
        manager, lock = lock_world
        sim, net, engine, subject_node = _build(
            star(["lock-1"]), manager, [lock], {"open": lambda args: b"ok"}
        )
        que1 = engine.start_round()
        sim.schedule(0.0, lambda: net.broadcast(SUBJECT, que1))
        sim.run()
        command = subject_node.command_client.build_command("lock-1", "reboot")
        net.unicast(SUBJECT, "lock-1", command)
        sim.run()
        t, peer, payload = subject_node.command_results[-1]
        assert payload == b""  # denial recorded, no result payload
        assert any("denied" in str(e) for e in engine.errors)
