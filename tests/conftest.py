"""Shared fixtures: a small provisioned enterprise and ready engines.

Key generation is the slow part of setup, so the standard backend and
credentials are session-scoped; engines (which hold mutable state) are
built fresh per test from the shared credentials.
"""

from __future__ import annotations

import pytest

from repro.backend import Backend
from repro.protocol.object import ObjectEngine
from repro.protocol.subject import SubjectEngine
from repro.protocol.versions import Version


@pytest.fixture(scope="session")
def backend() -> Backend:
    """A backend with one secret group and a spread of subjects/objects."""
    backend = Backend()
    backend.add_sensitive_policy("sensitive:needs-support", "sensitive:serves-support")
    backend.add_policy(
        "staff-media", "position=='staff'", "type=='multimedia'", ("play",)
    )
    return backend


@pytest.fixture(scope="session")
def staff(backend: Backend):
    return backend.register_subject(
        "staff-alice", {"position": "staff", "department": "X", "building": "B"}
    )


@pytest.fixture(scope="session")
def manager(backend: Backend):
    return backend.register_subject(
        "manager-bob", {"position": "manager", "department": "X", "building": "B"}
    )


@pytest.fixture(scope="session")
def fellow(backend: Backend):
    """A subject with the sensitive attribute (secret-group member)."""
    return backend.register_subject(
        "student-sam", {"position": "student", "department": "CS"},
        sensitive_attributes=("sensitive:needs-support",),
    )


@pytest.fixture(scope="session")
def visitor(backend: Backend):
    return backend.register_subject("visitor-eve", {"position": "visitor"})


@pytest.fixture(scope="session")
def thermometer(backend: Backend):
    return backend.register_object(
        "thermo-1", {"type": "thermometer", "building": "B"}, level=1,
        functions=("read_temperature",),
    )


@pytest.fixture(scope="session")
def media(backend: Backend):
    return backend.register_object(
        "media-1", {"type": "multimedia", "building": "B"}, level=2,
        functions=("play",),
        variants=[
            ("position=='manager'", ("play", "cast", "admin")),
            ("position=='staff'", ("play",)),
        ],
    )


@pytest.fixture(scope="session")
def kiosk(backend: Backend):
    """A Level 3 magazine kiosk: Level 2 face + covert variant."""
    return backend.register_object(
        "kiosk-1", {"type": "magazine kiosk", "building": "B"}, level=3,
        functions=("dispense_magazine",),
        variants=[("true", ("dispense_magazine",))],
        covert_functions={"sensitive:serves-support": ("dispense_support_flyer",)},
    )


@pytest.fixture
def subject_engine(staff):
    return SubjectEngine(staff, Version.V3_0)


@pytest.fixture
def fellow_engine(fellow):
    return SubjectEngine(fellow, Version.V3_0)


@pytest.fixture
def media_engine(media):
    return ObjectEngine(media, Version.V3_0)


@pytest.fixture
def kiosk_engine(kiosk):
    return ObjectEngine(kiosk, Version.V3_0)


@pytest.fixture
def thermo_engine(thermometer):
    return ObjectEngine(thermometer, Version.V3_0)
