"""PROF (signed attribute profile) tests."""

import pytest

from repro.attributes.model import AttributeSet
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.profile import Profile, ProfileError, sign_profile


@pytest.fixture(scope="module")
def admin():
    return generate_signing_key()


class TestSigning:
    def test_signed_profile_verifies(self, admin):
        prof = sign_profile(Profile("dev", AttributeSet(type="lock"), ("open",)), admin)
        assert prof.verify(admin.public_key)

    def test_unsigned_profile_fails_verify(self, admin):
        assert not Profile("dev", AttributeSet()).verify(admin.public_key)

    def test_unsigned_profile_cannot_serialize(self):
        with pytest.raises(ProfileError):
            Profile("dev", AttributeSet()).to_bytes()

    def test_wrong_admin_rejected(self, admin):
        other = generate_signing_key()
        prof = sign_profile(Profile("dev", AttributeSet()), admin)
        assert not prof.verify(other.public_key)


class TestSerialization:
    def test_roundtrip(self, admin):
        prof = sign_profile(
            Profile("dev-1", AttributeSet(type="hvac", floor=2),
                    ("set_temperature", "fan"), variant="staff-view"),
            admin,
        )
        restored = Profile.from_bytes(prof.to_bytes())
        assert restored == prof
        assert restored.functions == ("set_temperature", "fan")
        assert restored.variant == "staff-view"
        assert restored.verify(admin.public_key)

    def test_empty_functions(self, admin):
        prof = sign_profile(Profile("u", AttributeSet(position="staff")), admin)
        assert Profile.from_bytes(prof.to_bytes()).functions == ()

    def test_tampered_attributes_rejected(self, admin):
        prof = sign_profile(Profile("dev", AttributeSet(type="safeZ")), admin)
        data = bytearray(prof.to_bytes())
        idx = bytes(data).find(b"safeZ")
        data[idx] ^= 0x01
        tampered = Profile.from_bytes(bytes(data))
        assert not tampered.verify(admin.public_key)

    def test_tampered_functions_rejected(self, admin):
        """Forging extra service rights must invalidate the admin signature."""
        prof = sign_profile(Profile("dev", AttributeSet(), ("open",)), admin)
        data = prof.to_bytes().replace(b"open", b"OPEN")
        assert not Profile.from_bytes(data).verify(admin.public_key)

    def test_garbage_rejected(self):
        with pytest.raises(ProfileError):
            Profile.from_bytes(b"\xff\xff")
