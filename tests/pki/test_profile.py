"""PROF (signed attribute profile) tests."""

import pytest

from repro.attributes.model import AttributeSet
from repro.crypto import meter
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.profile import (
    Profile,
    ProfileError,
    clear_verify_cache,
    sign_profile,
    verify_cache_len,
)


@pytest.fixture(scope="module")
def admin():
    return generate_signing_key()


class TestSigning:
    def test_signed_profile_verifies(self, admin):
        prof = sign_profile(Profile("dev", AttributeSet(type="lock"), ("open",)), admin)
        assert prof.verify(admin.public_key)

    def test_unsigned_profile_fails_verify(self, admin):
        assert not Profile("dev", AttributeSet()).verify(admin.public_key)

    def test_unsigned_profile_cannot_serialize(self):
        with pytest.raises(ProfileError):
            Profile("dev", AttributeSet()).to_bytes()

    def test_wrong_admin_rejected(self, admin):
        other = generate_signing_key()
        prof = sign_profile(Profile("dev", AttributeSet()), admin)
        assert not prof.verify(other.public_key)


class TestSerialization:
    def test_roundtrip(self, admin):
        prof = sign_profile(
            Profile("dev-1", AttributeSet(type="hvac", floor=2),
                    ("set_temperature", "fan"), variant="staff-view"),
            admin,
        )
        restored = Profile.from_bytes(prof.to_bytes())
        assert restored == prof
        assert restored.functions == ("set_temperature", "fan")
        assert restored.variant == "staff-view"
        assert restored.verify(admin.public_key)

    def test_empty_functions(self, admin):
        prof = sign_profile(Profile("u", AttributeSet(position="staff")), admin)
        assert Profile.from_bytes(prof.to_bytes()).functions == ()

    def test_tampered_attributes_rejected(self, admin):
        prof = sign_profile(Profile("dev", AttributeSet(type="safeZ")), admin)
        data = bytearray(prof.to_bytes())
        idx = bytes(data).find(b"safeZ")
        data[idx] ^= 0x01
        tampered = Profile.from_bytes(bytes(data))
        assert not tampered.verify(admin.public_key)

    def test_tampered_functions_rejected(self, admin):
        """Forging extra service rights must invalidate the admin signature."""
        prof = sign_profile(Profile("dev", AttributeSet(), ("open",)), admin)
        data = prof.to_bytes().replace(b"open", b"OPEN")
        assert not Profile.from_bytes(data).verify(admin.public_key)

    def test_garbage_rejected(self):
        with pytest.raises(ProfileError):
            Profile.from_bytes(b"\xff\xff")

    def test_serialization_memoized(self, admin):
        prof = sign_profile(Profile("dev", AttributeSet(type="lock"), ("open",)), admin)
        assert prof.to_bytes() is prof.to_bytes()
        assert prof.body_bytes() is prof.body_bytes()

    def test_parsed_profile_keeps_wire_bytes(self, admin):
        prof = sign_profile(Profile("dev", AttributeSet(type="lock")), admin)
        data = prof.to_bytes()
        assert Profile.from_bytes(data).to_bytes() == data


class TestVerifyCache:
    def test_hit_records_logical_verify_and_marker(self, admin):
        clear_verify_cache()
        prof = sign_profile(Profile("dev", AttributeSet(type="cam")), admin)
        assert prof.verify(admin.public_key)
        with meter.metered() as tally:
            assert prof.verify(admin.public_key)
        assert tally.total("ecdsa_verify") == 1
        assert tally.total("profile_verify_cached") == 1

    def test_cold_verify_has_no_marker(self, admin):
        clear_verify_cache()
        prof = sign_profile(Profile("dev", AttributeSet(type="cam")), admin)
        with meter.metered() as tally:
            assert prof.verify(admin.public_key)
        assert tally.total("profile_verify_cached") == 0
        assert tally.total("ecdsa_verify") == 1

    def test_reparsed_bytes_share_the_cache_entry(self, admin):
        """The cache keys on serialized bytes, so a fresh parse of the same
        wire PROF (a returning subject) is a hit."""
        clear_verify_cache()
        prof = sign_profile(Profile("dev", AttributeSet(type="cam")), admin)
        prof.verify(admin.public_key)
        reparsed = Profile.from_bytes(prof.to_bytes())
        with meter.metered() as tally:
            assert reparsed.verify(admin.public_key)
        assert tally.total("profile_verify_cached") == 1

    def test_negative_results_cached(self, admin):
        clear_verify_cache()
        other = generate_signing_key()
        prof = sign_profile(Profile("dev", AttributeSet()), admin)
        assert not prof.verify(other.public_key)
        with meter.metered() as tally:
            assert not prof.verify(other.public_key)  # still rejected from cache
        assert tally.total("profile_verify_cached") == 1

    def test_cache_keyed_by_admin_key(self, admin):
        """A hit under one verifying key never answers for another key."""
        clear_verify_cache()
        other = generate_signing_key()
        prof = sign_profile(Profile("dev", AttributeSet()), admin)
        assert prof.verify(admin.public_key)
        assert not prof.verify(other.public_key)
        assert verify_cache_len() == 2

    def test_clear_resets_to_cold(self, admin):
        prof = sign_profile(Profile("dev", AttributeSet()), admin)
        prof.verify(admin.public_key)
        clear_verify_cache()
        assert verify_cache_len() == 0
        with meter.metered() as tally:
            assert prof.verify(admin.public_key)
        assert tally.total("profile_verify_cached") == 0
