"""ChainVerifier: caching behaviour and the §IX-B op-count contract."""

import pytest

from repro.crypto import meter
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.certificate import CertificateChain, issue_certificate
from repro.pki.chain import ChainVerifier


@pytest.fixture(scope="module")
def pki():
    root = generate_signing_key()
    inter = generate_signing_key()
    entity = generate_signing_key()
    c_inter = issue_certificate("root", root, "region", inter.public_key, 1)
    c_leaf = issue_certificate("region", inter, "dev", entity.public_key, 2)
    return root, inter, entity, CertificateChain((c_leaf, c_inter))


class TestVerification:
    def test_valid_chain_returns_leaf(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        leaf = verifier.verify(chain)
        assert leaf is not None and leaf.subject_id == "dev"

    def test_wrong_root_rejected(self, pki):
        _, _, _, chain = pki
        fake = generate_signing_key()
        assert ChainVerifier("root", fake.public_key).verify(chain) is None

    def test_bytes_interface(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify_chain_bytes(chain.to_bytes()).subject_id == "dev"
        assert verifier.verify_chain_bytes(b"garbage") is None

    def test_expired_leaf_rejected(self, pki):
        root, inter, entity, _ = pki
        c_inter = issue_certificate("root", root, "region", inter.public_key, 1)
        c_leaf = issue_certificate(
            "region", inter, "dev", entity.public_key, 2, not_after=5
        )
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify(CertificateChain((c_leaf, c_inter)), now=10) is None

    def test_forged_intermediate_rejected(self, pki):
        root, _, entity, _ = pki
        rogue_inter = generate_signing_key()
        fake_root = generate_signing_key()
        c_inter = issue_certificate("root", fake_root, "region", rogue_inter.public_key, 1)
        c_leaf = issue_certificate("region", rogue_inter, "dev", entity.public_key, 2)
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify(CertificateChain((c_leaf, c_inter))) is None


class TestCaching:
    def test_steady_state_is_one_verify(self, pki):
        """After warm-up, a 2-cert chain costs exactly 1 ECDSA verify —
        the assumption behind the paper's 3-verify per-discovery count."""
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 1

    def test_cold_chain_verifies_everything(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 2

    def test_cache_does_not_leak_across_intermediates(self, pki):
        """A different intermediate (even same-named) must be re-verified."""
        root, _, entity, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        rogue = generate_signing_key()
        fake_root = generate_signing_key()
        c_inter = issue_certificate("root", fake_root, "region", rogue.public_key, 9)
        c_leaf = issue_certificate("region", rogue, "dev", entity.public_key, 10)
        assert verifier.verify(CertificateChain((c_leaf, c_inter))) is None


class TestLeafAndChainCaches:
    def test_leaf_hit_still_meters_logical_verify(self, pki):
        """A returning leaf costs a lookup, but §IX-B still counts 1 verify
        — plus the cert_verify_cached marker distinguishing warm from cold."""
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.verify(chain)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 1
        assert tally.total("cert_verify_cached") == 1

    def test_cold_verify_has_no_cached_marker(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("cert_verify_cached") == 0

    def test_chain_bytes_hit_skips_parsing(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        data = chain.to_bytes()
        assert verifier.verify_chain_bytes(data) is not None
        with meter.metered() as tally:
            leaf = verifier.verify_chain_bytes(data)
        assert leaf is not None and leaf.subject_id == "dev"
        assert tally.total("ecdsa_verify") == 1
        assert tally.total("cert_verify_cached") == 1

    def test_cached_chain_rejected_outside_validity_window(self, pki):
        """Expiry invalidation: a warm cache entry never outlives the
        certificate's validity window."""
        root, inter, entity, _ = pki
        c_inter = issue_certificate("root", root, "region", inter.public_key, 21)
        c_leaf = issue_certificate(
            "region", inter, "dev", entity.public_key, 22, not_after=100
        )
        chain = CertificateChain((c_leaf, c_inter))
        verifier = ChainVerifier("root", root.public_key)
        data = chain.to_bytes()
        assert verifier.verify_chain_bytes(data, now=50) is not None
        assert verifier.verify_chain_bytes(data, now=101) is None
        assert verifier.verify(chain, now=101) is None
        # still valid again for an in-window `now` (clock skew replays)
        assert verifier.verify_chain_bytes(data, now=99) is not None

    def test_not_yet_valid_cached_chain_rejected(self, pki):
        root, inter, entity, _ = pki
        c_inter = issue_certificate("root", root, "region", inter.public_key, 23)
        c_leaf = issue_certificate(
            "region", inter, "dev", entity.public_key, 24, not_before=10
        )
        chain = CertificateChain((c_leaf, c_inter))
        verifier = ChainVerifier("root", root.public_key)
        data = chain.to_bytes()
        assert verifier.verify_chain_bytes(data, now=20) is not None
        assert verifier.verify_chain_bytes(data, now=5) is None

    def test_failures_are_not_cached(self, pki):
        root, inter, entity, _ = pki
        rogue = generate_signing_key()
        c_inter = issue_certificate("root", root, "region", inter.public_key, 25)
        c_leaf = issue_certificate("region", rogue, "dev", entity.public_key, 26)
        bad_chain = CertificateChain((c_leaf, c_inter)).to_bytes()
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify_chain_bytes(bad_chain) is None
        assert verifier.verify_chain_bytes(bad_chain) is None  # still rejected

    def test_clear_caches_forces_full_reverify(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        verifier.clear_caches()
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 2  # leaf + intermediate again
        assert tally.total("cert_verify_cached") == 0
