"""ChainVerifier: caching behaviour and the §IX-B op-count contract."""

import pytest

from repro.crypto import meter
from repro.crypto.ecdsa import generate_signing_key
from repro.pki.certificate import CertificateChain, issue_certificate
from repro.pki.chain import ChainVerifier


@pytest.fixture(scope="module")
def pki():
    root = generate_signing_key()
    inter = generate_signing_key()
    entity = generate_signing_key()
    c_inter = issue_certificate("root", root, "region", inter.public_key, 1)
    c_leaf = issue_certificate("region", inter, "dev", entity.public_key, 2)
    return root, inter, entity, CertificateChain((c_leaf, c_inter))


class TestVerification:
    def test_valid_chain_returns_leaf(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        leaf = verifier.verify(chain)
        assert leaf is not None and leaf.subject_id == "dev"

    def test_wrong_root_rejected(self, pki):
        _, _, _, chain = pki
        fake = generate_signing_key()
        assert ChainVerifier("root", fake.public_key).verify(chain) is None

    def test_bytes_interface(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify_chain_bytes(chain.to_bytes()).subject_id == "dev"
        assert verifier.verify_chain_bytes(b"garbage") is None

    def test_expired_leaf_rejected(self, pki):
        root, inter, entity, _ = pki
        c_inter = issue_certificate("root", root, "region", inter.public_key, 1)
        c_leaf = issue_certificate(
            "region", inter, "dev", entity.public_key, 2, not_after=5
        )
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify(CertificateChain((c_leaf, c_inter)), now=10) is None

    def test_forged_intermediate_rejected(self, pki):
        root, _, entity, _ = pki
        rogue_inter = generate_signing_key()
        fake_root = generate_signing_key()
        c_inter = issue_certificate("root", fake_root, "region", rogue_inter.public_key, 1)
        c_leaf = issue_certificate("region", rogue_inter, "dev", entity.public_key, 2)
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify(CertificateChain((c_leaf, c_inter))) is None


class TestCaching:
    def test_steady_state_is_one_verify(self, pki):
        """After warm-up, a 2-cert chain costs exactly 1 ECDSA verify —
        the assumption behind the paper's 3-verify per-discovery count."""
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 1

    def test_cold_chain_verifies_everything(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 2

    def test_cache_does_not_leak_across_intermediates(self, pki):
        """A different intermediate (even same-named) must be re-verified."""
        root, _, entity, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        rogue = generate_signing_key()
        fake_root = generate_signing_key()
        c_inter = issue_certificate("root", fake_root, "region", rogue.public_key, 9)
        c_leaf = issue_certificate("region", rogue, "dev", entity.public_key, 10)
        assert verifier.verify(CertificateChain((c_leaf, c_inter))) is None


class TestLeafAndChainCaches:
    def test_leaf_hit_still_meters_logical_verify(self, pki):
        """A returning leaf costs a lookup, but §IX-B still counts 1 verify
        — plus the cert_verify_cached marker distinguishing warm from cold."""
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.verify(chain)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 1
        assert tally.total("cert_verify_cached") == 1

    def test_cold_verify_has_no_cached_marker(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("cert_verify_cached") == 0

    def test_chain_bytes_hit_skips_parsing(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        data = chain.to_bytes()
        assert verifier.verify_chain_bytes(data) is not None
        with meter.metered() as tally:
            leaf = verifier.verify_chain_bytes(data)
        assert leaf is not None and leaf.subject_id == "dev"
        assert tally.total("ecdsa_verify") == 1
        assert tally.total("cert_verify_cached") == 1

    def test_cached_chain_rejected_outside_validity_window(self, pki):
        """Expiry invalidation: a warm cache entry never outlives the
        certificate's validity window."""
        root, inter, entity, _ = pki
        c_inter = issue_certificate("root", root, "region", inter.public_key, 21)
        c_leaf = issue_certificate(
            "region", inter, "dev", entity.public_key, 22, not_after=100
        )
        chain = CertificateChain((c_leaf, c_inter))
        verifier = ChainVerifier("root", root.public_key)
        data = chain.to_bytes()
        assert verifier.verify_chain_bytes(data, now=50) is not None
        assert verifier.verify_chain_bytes(data, now=101) is None
        assert verifier.verify(chain, now=101) is None
        # still valid again for an in-window `now` (clock skew replays)
        assert verifier.verify_chain_bytes(data, now=99) is not None

    def test_not_yet_valid_cached_chain_rejected(self, pki):
        root, inter, entity, _ = pki
        c_inter = issue_certificate("root", root, "region", inter.public_key, 23)
        c_leaf = issue_certificate(
            "region", inter, "dev", entity.public_key, 24, not_before=10
        )
        chain = CertificateChain((c_leaf, c_inter))
        verifier = ChainVerifier("root", root.public_key)
        data = chain.to_bytes()
        assert verifier.verify_chain_bytes(data, now=20) is not None
        assert verifier.verify_chain_bytes(data, now=5) is None

    def test_failures_are_not_cached(self, pki):
        root, inter, entity, _ = pki
        rogue = generate_signing_key()
        c_inter = issue_certificate("root", root, "region", inter.public_key, 25)
        c_leaf = issue_certificate("region", rogue, "dev", entity.public_key, 26)
        bad_chain = CertificateChain((c_leaf, c_inter)).to_bytes()
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.verify_chain_bytes(bad_chain) is None
        assert verifier.verify_chain_bytes(bad_chain) is None  # still rejected

    def test_clear_caches_forces_full_reverify(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        verifier.clear_caches()
        with meter.metered() as tally:
            assert verifier.verify(chain) is not None
        assert tally.total("ecdsa_verify") == 2  # leaf + intermediate again
        assert tally.total("cert_verify_cached") == 0


def _subject_chain(pki, name: str, serial: int) -> CertificateChain:
    """A new subject under the fixture's *existing* intermediate (same
    cert bytes, so the intermediate cache is genuinely shared)."""
    _, inter, _, chain = pki
    entity = generate_signing_key()
    c_leaf = issue_certificate("region", inter, name, entity.public_key, serial)
    return CertificateChain((c_leaf, chain.certificates[1]))


class TestLRUBoundsAndCacheInfo:
    def test_cache_info_counts_hits_and_misses(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.cache_info().hits == 0
        verifier.verify(chain)          # cold: miss
        verifier.verify(chain)          # leaf cache: hit
        data = chain.to_bytes()
        verifier.verify_chain_bytes(data)  # leaf cache again: hit
        verifier.verify_chain_bytes(data)  # chain-bytes cache: hit
        info = verifier.cache_info()
        assert (info.hits, info.misses) == (3, 1)
        assert info.maxsize == verifier.maxsize
        assert info.leaf_size == 1 and info.chain_size == 1
        assert info.intermediate_size == 1

    def test_caches_never_exceed_maxsize(self, pki):
        """A churning fleet (many distinct subjects) stays bounded."""
        root, *_ = pki
        verifier = ChainVerifier("root", root.public_key, maxsize=4)
        for i in range(10):
            chain = _subject_chain(pki, f"churn-{i}", 100 + i)
            assert verifier.verify_chain_bytes(chain.to_bytes()) is not None
        info = verifier.cache_info()
        assert info.leaf_size <= 4 and info.chain_size <= 4
        assert info.intermediate_size <= 4
        assert info.misses == 10

    def test_lru_evicts_oldest_first(self, pki):
        root, *_ = pki
        verifier = ChainVerifier("root", root.public_key, maxsize=2)
        chains = [_subject_chain(pki, f"lru-{i}", 200 + i) for i in range(3)]
        verifier.verify(chains[0])
        verifier.verify(chains[1])
        verifier.verify(chains[0])  # hit: refreshes leaf 0's LRU slot
        verifier.verify(chains[2])  # miss: evicts leaf 1, not leaf 0
        misses = verifier.cache_info().misses
        with meter.metered() as tally:
            verifier.verify(chains[0])  # survived the eviction
        assert tally.total("cert_verify_cached") == 1
        verifier.verify(chains[1])  # evicted: full re-verify
        assert verifier.cache_info().misses == misses + 1

    def test_maxsize_below_one_rejected(self, pki):
        root, *_ = pki
        with pytest.raises(ValueError):
            ChainVerifier("root", root.public_key, maxsize=0)


class TestPendingVerifyOps:
    def test_cold_chain_decomposes_to_two_ops(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        ops = verifier.pending_verify_ops(chain.to_bytes())
        assert len(ops) == 2
        assert all(op[0] == "verify" for op in ops)

    def test_warm_chain_decomposes_to_nothing(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        assert verifier.pending_verify_ops(chain.to_bytes()) == []

    def test_shared_intermediate_costs_one_leaf_op(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        verifier.warm_up(chain)
        other = _subject_chain(pki, "other", 300)
        ops = verifier.pending_verify_ops(other.to_bytes())
        assert len(ops) == 1  # intermediate ladder already cached

    def test_decomposition_is_read_only(self, pki):
        root, _, _, chain = pki
        verifier = ChainVerifier("root", root.public_key)
        with meter.metered() as tally:
            verifier.pending_verify_ops(chain.to_bytes())
        assert not tally.counts
        assert verifier.cache_info() == verifier.cache_info()._replace()
        assert verifier.cache_info().leaf_size == 0

    def test_garbage_and_expired_yield_no_ops(self, pki):
        root, inter, entity, _ = pki
        verifier = ChainVerifier("root", root.public_key)
        assert verifier.pending_verify_ops(b"garbage") == []
        c_inter = issue_certificate("root", root, "region", inter.public_key, 31)
        c_leaf = issue_certificate(
            "region", inter, "dev", entity.public_key, 32, not_after=5
        )
        expired = CertificateChain((c_leaf, c_inter)).to_bytes()
        assert verifier.pending_verify_ops(expired, now=10) == []
