"""Certificate and chain tests."""

import pytest

from repro.crypto.ecdsa import generate_signing_key
from repro.pki.certificate import (
    Certificate,
    CertificateChain,
    CertificateError,
    issue_certificate,
)


@pytest.fixture(scope="module")
def root():
    return generate_signing_key()


@pytest.fixture(scope="module")
def inter():
    return generate_signing_key()


@pytest.fixture(scope="module")
def entity():
    return generate_signing_key()


@pytest.fixture(scope="module")
def chain(root, inter, entity):
    c_inter = issue_certificate("root", root, "region", inter.public_key, 1)
    c_leaf = issue_certificate("region", inter, "device-1", entity.public_key, 2)
    return CertificateChain((c_leaf, c_inter))


class TestIssuance:
    def test_fields(self, root, entity):
        cert = issue_certificate("root", root, "dev", entity.public_key, 7)
        assert cert.subject_id == "dev"
        assert cert.issuer_id == "root"
        assert cert.serial == 7
        assert cert.strength == 128

    def test_signature_valid(self, root, entity):
        cert = issue_certificate("root", root, "dev", entity.public_key, 1)
        assert cert.verify_signature(root.public_key)

    def test_wrong_issuer_key_rejected(self, root, inter, entity):
        cert = issue_certificate("root", root, "dev", entity.public_key, 1)
        assert not cert.verify_signature(inter.public_key)

    def test_strength_mismatch_rejected(self, root):
        weak = generate_signing_key(112)
        with pytest.raises(CertificateError):
            issue_certificate("root", root, "dev", weak.public_key, 1, strength=128)


class TestSerialization:
    def test_roundtrip(self, root, entity):
        cert = issue_certificate("root", root, "device-x", entity.public_key, 9)
        restored = Certificate.from_bytes(cert.to_bytes())
        assert restored == cert
        assert restored.verify_signature(root.public_key)

    def test_tampered_subject_rejected(self, root, entity):
        cert = issue_certificate("root", root, "deviceA", entity.public_key, 1)
        data = bytearray(cert.to_bytes())
        idx = bytes(data).find(b"deviceA")
        data[idx] ^= 0x01
        tampered = Certificate.from_bytes(bytes(data))
        assert not tampered.verify_signature(root.public_key)

    def test_garbage_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.from_bytes(b"\x01garbage")

    def test_missing_signature_rejected(self, root, entity):
        cert = issue_certificate("root", root, "dev", entity.public_key, 1)
        with pytest.raises(CertificateError):
            Certificate.from_bytes(cert.tbs())


class TestValidity:
    def test_window(self, root, entity):
        cert = issue_certificate(
            "root", root, "dev", entity.public_key, 1, not_before=10, not_after=20
        )
        assert not cert.valid_at(9)
        assert cert.valid_at(10)
        assert cert.valid_at(20)
        assert not cert.valid_at(21)


class TestChain:
    def test_valid_chain(self, chain, root):
        assert chain.verify("root", root.public_key)

    def test_roundtrip(self, chain, root):
        restored = CertificateChain.from_bytes(chain.to_bytes())
        assert restored.verify("root", root.public_key)
        assert restored.leaf.subject_id == "device-1"

    def test_wrong_root_rejected(self, chain):
        impostor_root = generate_signing_key()
        assert not chain.verify("root", impostor_root.public_key)

    def test_broken_linkage_rejected(self, root, inter, entity):
        c_other = issue_certificate("root", root, "other-region", inter.public_key, 5)
        c_leaf = issue_certificate("region", inter, "dev", entity.public_key, 6)
        assert not CertificateChain((c_leaf, c_other)).verify("root", root.public_key)

    def test_expired_intermediate_rejected(self, root, inter, entity):
        c_inter = issue_certificate(
            "root", root, "region", inter.public_key, 1, not_after=5
        )
        c_leaf = issue_certificate("region", inter, "dev", entity.public_key, 2)
        chain = CertificateChain((c_leaf, c_inter))
        assert not chain.verify("root", root.public_key, now=10)

    def test_empty_chain_rejected(self):
        with pytest.raises(CertificateError):
            CertificateChain(())

    def test_single_cert_chain(self, root, entity):
        cert = issue_certificate("root", root, "dev", entity.public_key, 1)
        assert CertificateChain((cert,)).verify("root", root.public_key)
