"""CLI smoke tests (in-process, capturing stdout)."""

import pytest

from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "alice" in out and "kiosk-1" in out
        # the covert flyer appears for sam only
        assert out.count("dispense_support_flyer") == 1

    def test_simulate(self, capsys):
        assert main(["simulate", "--level", "1", "--objects", "3"]) == 0
        out = capsys.readouterr().out
        assert "discovered 3/3 objects" in out

    def test_simulate_multihop_lossy(self, capsys):
        assert main([
            "simulate", "--level", "2", "--objects", "4", "--hops", "2",
            "--loss", "0.2", "--rounds", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "discovered 4/4" in out

    def test_table1(self, capsys):
        assert main(["table1", "--n", "50", "--alpha", "10"]) == 0
        out = capsys.readouterr().out
        assert "Argus" in out and "ID-based ACL" in out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6h" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "msg_overhead"]) == 0
        out = capsys.readouterr().out
        assert "2088" in out

    def test_campus(self, capsys):
        assert main([
            "campus", "--subjects", "10", "--buildings", "1",
            "--rooms", "3", "--sample", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "subjects" in out and "sees" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # no partial report before the rejection
        assert "unknown experiments: fig99" in captured.err
        assert "table1" in captured.err  # valid names suggested

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_audit(self, capsys):
        assert main(["audit", "--subjects", "50"]) == 0
        out = capsys.readouterr().out
        assert "visibility audit" in out and "mean N" in out
