"""Unit-level checks of the figure-module measure() helpers."""

import pytest

from repro.experiments import fig6a, fig6c, fig6d, msg_overhead
from repro.experiments.fig6b import measure_level


class TestFig6aMeasure:
    def test_local_measurement_shape(self):
        local = fig6a.measure_local(128, iterations=3)
        assert set(local) == {"ecdsa_sign", "ecdsa_verify", "ecdh_gen", "ecdh_derive"}
        assert all(v > 0 for v in local.values())

    def test_higher_strength_slower_locally(self):
        fast = fig6a.measure_local(128, iterations=5)
        slow = fig6a.measure_local(256, iterations=5)
        assert slow["ecdsa_sign"] > fast["ecdsa_sign"]


class TestFig6bMeasure:
    def test_level1_object_is_free(self):
        m = measure_level(1)
        assert m["object_ms"] == pytest.approx(0.0, abs=0.2)

    def test_level2_sides_asymmetric(self):
        m = measure_level(2)
        assert m["object_ms"] > 2 * m["subject_ms"]


class TestFig6cMeasure:
    def test_decryption_verified_correct(self):
        result = fig6c.measure(3)
        assert result["pairings"] == 7
        assert result["calibrated_ms"] == pytest.approx(3500.0)

    def test_shared_scheme_reusable(self):
        from repro.crypto.abe import CpAbe

        scheme = CpAbe()
        a = fig6c.measure(2, scheme)
        b = fig6c.measure(4, scheme)
        assert b["pairings"] > a["pairings"]


class TestFig6dMeasure:
    def test_local_pairing_fast_in_sim_group(self):
        """The transparent group's pairing is microseconds — which is WHY
        cost must come from the calibrated tables, not local wall time."""
        assert fig6d.measure_local_pairing(iterations=50) < 1.0

    def test_local_hmac_sub_ms(self):
        assert fig6d.measure_local_hmac(iterations=200) < 1.0


class TestCaptureExchange:
    def test_level3_capture(self):
        que1, res1, que2, res2 = msg_overhead.capture_exchange(level=3)
        assert que2.mac_s3 is not None
        assert len(que1.to_bytes()) == 29

    def test_level2_capture_complete(self):
        messages = msg_overhead.capture_exchange(level=2)
        assert all(m is not None for m in messages)
