"""End-to-end enterprise lifecycle: provision → discover → churn → re-discover."""

import pytest

from repro.backend import Backend, ChurnEngine
from repro.backend.synthetic import SyntheticConfig, generate, provision
from repro.protocol import ObjectEngine, SubjectEngine, Version, discover
from repro.protocol.discovery import run_round


@pytest.fixture(scope="module")
def campus():
    ent = generate(SyntheticConfig(
        n_subjects=20, n_buildings=2, rooms_per_building=4,
        objects_per_room=2, n_secret_groups=1, gamma=4, seed=11,
    ))
    backend = Backend()
    provision(ent, backend)
    return ent, backend


class TestProvisionedCampus:
    def test_everyone_sees_level1_objects(self, campus):
        ent, backend = campus
        level1_ids = {s["object_id"] for s in ent.object_specs if s["level"] == 1}
        if not level1_ids:
            pytest.skip("generated campus has no Level 1 objects")
        creds = next(iter(backend.issued_subjects.values()))
        objects = list(backend.issued_objects.values())
        result = discover(creds, objects)
        assert level1_ids <= result.service_ids()

    def test_building_scoping(self, campus):
        """Level 2 objects in building A are invisible to building-B staff
        (unless a manager policy applies)."""
        ent, backend = campus
        a_staff = next(
            backend.issued_subjects[s["subject_id"]]
            for s in ent.subject_specs
            if s["attributes"]["building"] == "bldg-A"
            and s["attributes"]["position"] == "staff"
        )
        b_level2 = [
            backend.issued_objects[s["object_id"]]
            for s in ent.object_specs
            if s["attributes"]["building"] == "bldg-B" and s["level"] == 2
        ]
        if not b_level2:
            pytest.skip("no Level 2 objects in building B")
        result = discover(a_staff, b_level2)
        assert all(s.level_seen == 1 for s in result.services)

    def test_sensitive_members_find_covert_services(self, campus):
        ent, backend = campus
        covert_hosts = {
            s["object_id"] for s in ent.object_specs if s["level"] == 3
        }
        if not covert_hosts:
            pytest.skip("no Level 3 objects generated")
        member = next(
            backend.issued_subjects[s["subject_id"]]
            for s in ent.subject_specs if s["sensitive_attributes"]
        )
        objects = [backend.issued_objects[oid] for oid in covert_hosts]
        result = discover(member, objects)
        assert any(s.level_seen == 3 for s in result.services)

    def test_nonmembers_never_see_level3(self, campus):
        ent, backend = campus
        covert_hosts = {
            s["object_id"] for s in ent.object_specs if s["level"] == 3
        }
        if not covert_hosts:
            pytest.skip("no Level 3 objects generated")
        plain = next(
            backend.issued_subjects[s["subject_id"]]
            for s in ent.subject_specs if not s["sensitive_attributes"]
        )
        objects = [backend.issued_objects[oid] for oid in covert_hosts]
        result = discover(plain, objects)
        assert all(s.level_seen != 3 for s in result.services)


class TestChurnLifecycle:
    def test_revocation_round_trip(self, campus):
        ent, backend = campus
        churn = ChurnEngine(backend)
        # register a fresh user so we don't disturb other tests
        creds, _ = churn.add_subject(
            "lifecycle-user",
            {"department": "dept-0", "position": "staff", "building": "bldg-A"},
        )
        objects = [
            backend.issued_objects[s["object_id"]]
            for s in ent.object_specs
            if s["attributes"]["building"] == "bldg-A" and s["level"] == 2
        ]
        if not objects:
            pytest.skip("no Level 2 objects in building A")
        before = discover(creds, objects)
        assert any(s.level_seen == 2 for s in before.services)

        report = churn.remove_subject("lifecycle-user")
        assert report.overhead >= len(objects)
        after = discover(creds, objects)
        assert all(s.level_seen != 2 for s in after.services)


class TestVersionInterop:
    def test_v3_subject_v3_objects_all_versions_of_fleet(self, campus):
        """One subject runs all three protocol versions against the same
        fleet; v1 can never see Level 3."""
        ent, backend = campus
        subject_spec = next(s for s in ent.subject_specs if s["sensitive_attributes"])
        creds = backend.issued_subjects[subject_spec["subject_id"]]
        objects = list(backend.issued_objects.values())[:8]
        for version in Version:
            result = discover(creds, objects, version=version)
            if version is Version.V1_0:
                assert all(s.level_seen != 3 for s in result.services)
