"""Experiment-table plumbing: rendering edge cases, runner entry point."""

import pytest

from repro.experiments.common import Table
from repro.experiments.runner import ALL, main, run_all


class TestTable:
    def test_basic_render(self):
        table = Table("Title", ["a", "b"])
        table.add(1, 2.5)
        text = table.render()
        assert "Title" in text and "2.500" in text

    def test_cell_count_enforced(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_empty_table_renders(self):
        text = Table("Empty", ["col"]).render()
        assert "Empty" in text and "col" in text

    def test_large_floats_compact(self):
        table = Table("T", ["v"])
        table.add(123456.789)
        assert "123456.8" in table.render()

    def test_notes_appended(self):
        table = Table("T", ["v"], notes="the note")
        table.add(1)
        assert table.render().endswith("the note")

    def test_column_alignment(self):
        table = Table("T", ["name", "v"])
        table.add("long-name-here", 1)
        table.add("x", 22)
        lines = table.render().splitlines()
        # all data lines equal width per column: header sep matches
        assert len(lines[2]) >= len("name  v")


class TestRunner:
    def test_run_all_selected(self):
        text = run_all(["msg_overhead"])
        assert "2088" in text

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_all(["nope"])

    def test_main_prints(self, capsys):
        assert main(["headline"]) == 0
        assert "Argus" in capsys.readouterr().out

    def test_registry_covers_every_figure(self):
        expected = {"table1", "fig6a", "fig6b", "fig6c", "fig6d",
                    "fig6e", "fig6f", "fig6g", "fig6h",
                    "msg_overhead", "headline"}
        assert expected <= set(ALL)
