"""The grand tour: one scenario exercising every subsystem in sequence.

Provision → snapshot → restore → discover (all levels) → command →
revoke over the wire → rekey over the wire → re-discover → audit.
If this test passes, the pieces don't just work — they work *together*.
"""

import pytest

from repro.access import CommandClient, CommandHandler, invoke
from repro.analysis.visibility import audit, compute_matrix
from repro.backend import Backend, ChurnEngine
from repro.backend.persistence import export_backend, import_backend
from repro.backend.updatewire import UpdateReceiver, push_group_rekey, push_revocation
from repro.protocol import ObjectEngine, ServiceDirectory, SubjectEngine, discover


@pytest.fixture(scope="module")
def story():
    backend = Backend(regions=("campus",))
    backend.add_subregion("campus", "north-wing")
    backend.add_sensitive_policy("sensitive:support", "sensitive:serves-support")
    backend.add_policy("staff-media", "position=='staff'", "type=='multimedia'",
                       ("play",))
    # Congruence matters: the kiosk's Level 2 face must be covered by a
    # policy too, or the backend cannot know whom to notify on revocation
    # (exactly the mismatch analysis.visibility audits for).
    backend.add_policy("staff-kiosk", "position=='staff'", "type=='kiosk'",
                       ("mag",))

    staff = backend.register_subject("tour-staff", {"position": "staff"})
    member = backend.register_subject(
        "tour-member", {"position": "staff"}, ("sensitive:support",),
        region="north-wing",
    )
    media = backend.register_object(
        "tour-media", {"type": "multimedia"}, level=2, functions=("play",),
        variants=[("position=='staff'", ("play",))],
    )
    kiosk = backend.register_object(
        "tour-kiosk", {"type": "kiosk"}, level=3, functions=("mag",),
        variants=[("position=='staff'", ("mag",))],
        covert_functions={"sensitive:serves-support": ("flyer",)},
        region="north-wing",
    )
    thermo = backend.register_object(
        "tour-thermo", {"type": "thermometer"}, level=1, functions=("read",),
    )
    return backend, staff, member, [media, kiosk, thermo]


def test_the_grand_tour(story):
    backend, staff, member, fleet = story

    # 1. snapshot and restore — continue the tour on the RESTORED state.
    restored = import_backend(export_backend(backend))
    r_staff = restored.issued_subjects["tour-staff"]
    r_member = restored.issued_subjects["tour-member"]
    r_fleet = [restored.issued_objects[c.object_id] for c in fleet]

    # 2. three-level discovery through the directory cache.
    directory = ServiceDirectory(r_member, max_age=0)
    delta = directory.refresh(r_fleet)
    assert sorted(delta["added"]) == ["tour-kiosk", "tour-media", "tour-thermo"]
    assert directory.lookup("tour-kiosk").level_seen == 3
    assert directory.lookup("tour-kiosk").functions == ("flyer",)

    # 3. post-discovery command on the Level 2 media device.
    subject_engine = SubjectEngine(r_staff)
    media_engine = ObjectEngine(r_fleet[0])
    from repro.attacks.channel import run_exchange

    assert run_exchange(subject_engine, media_engine).outcome is not None
    handler = CommandHandler(media_engine)
    handler.register("play", lambda args: b"now playing")
    client = CommandClient(subject_engine)
    assert invoke(client, handler, "tour-media", "play") == b"now playing"

    # 4. revoke the staff user OVER THE WIRE and verify enforcement.
    receivers = {
        c.object_id: UpdateReceiver(c.object_id, restored.admin_public,
                                    object_creds=c)
        for c in r_fleet
    }
    for message in push_revocation(restored, "tour-staff"):
        assert receivers[message.addressee].apply(message)
    blocked = discover(r_staff, r_fleet)
    assert all(s.level_seen == 1 for s in blocked.services)

    # 5. rotate the secret group key over the wire; the member keeps
    #    covert access under the new key.
    group_id = next(iter(r_member.group_keys))
    from repro.crypto.primitives import random_bytes

    group = restored.groups.groups[group_id]
    group.key = random_bytes(32)
    group.key_version += 1
    member_rx = UpdateReceiver("tour-member", restored.admin_public,
                               subject_creds=r_member)
    kiosk_rx = UpdateReceiver("tour-kiosk", restored.admin_public,
                              object_creds=restored.issued_objects["tour-kiosk"])
    rx = {"tour-member": member_rx, "tour-kiosk": kiosk_rx}
    for message in push_group_rekey(restored, group_id):
        assert rx[message.addressee].apply(message)
    after = discover(r_member, r_fleet)
    assert any(s.level_seen == 3 for s in after.services)

    # 6. churn accounting and the static audit agree with what happened.
    churn = ChurnEngine(restored)
    report = churn.remove_subject("tour-staff")
    assert report.overhead >= 1
    matrix = compute_matrix(restored.database)
    assert "tour-member" in matrix.subject_ids
    assert audit(restored.database, restored.groups).half_empty_groups == []
