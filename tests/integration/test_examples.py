"""Every example script must run clean end to end (they are the docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "covert_support_kiosk.py", "enterprise_campus.py",
            "multihop_building.py", "churn_and_revocation.py",
            "secure_door_lock.py", "walking_the_corridor.py"} <= names
