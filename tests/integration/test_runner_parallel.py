"""Parallel experiment runner: output equivalence, CLI surface, timings."""

import pytest

from repro.experiments import runner

#: Deterministic experiments (no wall-clock sampling in their output) —
#: the subset on which parallel output must be byte-identical.
DETERMINISTIC = ["table1", "msg_overhead", "version_overhead", "headline"]


class TestOutputEquivalence:
    def test_parallel_report_is_byte_identical(self):
        sequential = runner.run_all(DETERMINISTIC, jobs=1)
        parallel = runner.run_all(DETERMINISTIC, jobs=2)
        assert parallel == sequential

    def test_section_order_follows_request_order(self):
        forward = runner.run_all(DETERMINISTIC[:2], jobs=2)
        reverse = runner.run_all(DETERMINISTIC[1::-1], jobs=2)
        a, b = forward.split("\n\n", 1)[0], reverse.split("\n\n", 1)[0]
        assert a != b  # first section tracks the requested order

    def test_timed_variant_reports_one_duration_per_experiment(self):
        sections, seconds = runner.run_all_timed(DETERMINISTIC[:2], jobs=2)
        assert len(sections) == len(seconds) == 2
        assert all(s > 0 for s in seconds)


class TestValidation:
    def test_unknown_name_raises_before_any_work(self):
        with pytest.raises(KeyError, match="unknown experiment 'nope'"):
            runner.run_all(["table1", "nope"])

    def test_validate_names_returns_only_unknowns(self):
        assert runner.validate_names(["table1", "bogus", "headline"]) == ["bogus"]
        assert runner.validate_names(list(runner.ALL)) == []


class TestCli:
    def test_list_flag_prints_names_and_exits_zero(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == sorted(runner.ALL)

    def test_unknown_name_exits_2_with_suggestions(self, capsys):
        assert runner.main(["tabel1"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # no partial report on stdout
        assert "unknown experiment: tabel1" in captured.err
        assert "table1" in captured.err  # available names listed

    def test_report_on_stdout_timings_on_stderr(self, capsys):
        assert runner.main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out
        assert "Per-experiment wall-clock" in captured.err
        assert "TOTAL" in captured.err

    def test_sequential_flag_overrides_jobs(self, capsys):
        assert runner.main(["table1", "--jobs", "4", "--sequential"]) == 0
        assert "Table I" in capsys.readouterr().out
