"""Experiment runners: every table/figure regenerates and matches shape."""

import pytest

from repro.experiments import (
    fig6a,
    fig6b,
    fig6c,
    fig6d,
    fig6e,
    fig6f,
    fig6g,
    fig6h,
    headline,
    msg_overhead,
    table1,
)


class TestTable1:
    def test_headline_ratios(self):
        table = table1.closed_form()
        assert "add 1000x" in table.notes
        assert "remove 10.0x" in table.notes

    def test_simulated_matches_live_systems(self):
        table = table1.simulated_table(n_objects=20, alpha=5)
        rows = {row[0]: row[1:] for row in table.rows}
        assert rows["ID-based ACL"] == [20, 20]
        assert rows["Argus"] == [1, 20]


class TestFig6a:
    def test_monotone_in_strength(self):
        table = fig6a.run(iterations=3)
        by_op = {}
        for strength, op, paper_hw, local in table.rows:
            by_op.setdefault(op, []).append((strength, paper_hw, local))
        for op, rows in by_op.items():
            paper_series = [p for _, p, _ in sorted(rows)]
            assert paper_series == sorted(paper_series)


class TestFig6b:
    def test_paper_anchors_within_tolerance(self):
        table = fig6b.run()
        for level, side, calibrated, paper in table.rows:
            assert calibrated == pytest.approx(paper, abs=2.5)

    def test_level2_equals_level3(self):
        table = fig6b.run()
        values = {(lvl, side): cal for lvl, side, cal, _ in table.rows}
        assert values[(2, "subject")] == pytest.approx(values[(3, "subject")], abs=0.5)
        assert values[(2, "object")] == pytest.approx(values[(3, "object")], abs=0.5)


class TestFig6c:
    def test_linear_in_attributes(self):
        table = fig6c.run(max_attributes=5)
        pairings = [row[1] for row in table.rows]
        # 2n + 1 pairings
        assert pairings == [2 * n + 1 for n in range(1, 6)]
        calibrated = [row[2] for row in table.rows]
        deltas = [b - a for a, b in zip(calibrated, calibrated[1:])]
        assert all(d == pytest.approx(1000.0) for d in deltas)


class TestFig6d:
    def test_ratio_over_10x(self):
        table = fig6d.run()
        for _device, pairing, hmac, ratio in table.rows:
            assert ratio > 10


class TestFig6eToH:
    def test_fig6e_shape(self):
        table = fig6e.run(counts=(1, 5, 10))
        l1 = [row[1] for row in table.rows]
        l2 = [row[2] for row in table.rows]
        l3 = [row[3] for row in table.rows]
        assert l1 == sorted(l1) and l2 == sorted(l2)
        assert all(a < b for a, b in zip(l1, l2))
        for a, b in zip(l2, l3):
            assert a == pytest.approx(b, rel=0.02)

    def test_fig6f_level1_mostly_transmission(self):
        table = fig6f.run()
        fractions = {row[0]: row[4] for row in table.rows}
        assert fractions[1] > 80.0
        assert fractions[2] < fractions[1]

    def test_fig6g_slower_than_single_hop(self):
        multi = {row[0]: row[1] for row in fig6g.run().rows}
        single = fig6e.run(counts=(20,)).rows[0]
        assert multi[2] > single[2]  # Level 2 multihop > single-hop

    def test_fig6h_linear_in_hops(self):
        table = fig6h.run()
        l2 = [row[2] for row in table.rows]
        assert l2 == sorted(l2)
        deltas = [b - a for a, b in zip(l2, l2[1:])]
        # roughly linear: per-hop increments within 40% of each other
        assert max(deltas) < 1.4 * min(deltas)


class TestOverheadAndHeadline:
    def test_msg_overhead_totals(self):
        table = msg_overhead.run()
        assert "Level 1 = 228 B" in table.notes
        assert "Level 2/3 = 2088 B" in table.notes

    def test_headline_10x(self):
        table = headline.run()
        ratios = [row[2] for row in table.rows[1:]]
        assert all(r >= 10 for r in ratios)


class TestVersionOverhead:
    def test_que2_grows_exactly_32_bytes(self):
        from repro.experiments.version_overhead import measure_version
        from repro.protocol.versions import Version

        v1 = measure_version(Version.V1_0)
        v3 = measure_version(Version.V3_0)
        assert v3["que2_bytes"] - v1["que2_bytes"] == 32

    def test_compute_delta_under_1ms(self):
        from repro.experiments.version_overhead import measure_version
        from repro.protocol.versions import Version

        v1 = measure_version(Version.V1_0)
        v3 = measure_version(Version.V3_0)
        assert v3["subject_ms"] - v1["subject_ms"] < 1.0
        assert v3["object_ms"] - v1["object_ms"] < 1.0

    def test_level3_requires_v2_or_later(self):
        from repro.experiments.version_overhead import measure_version
        from repro.protocol.versions import Version

        assert measure_version(Version.V1_0)["level_seen"] == 2
        assert measure_version(Version.V2_0)["level_seen"] == 3


class TestScalabilitySweep:
    def test_crossover_formula(self):
        from repro.experiments.scalability_sweep import crossover_alpha_for_10x

        assert crossover_alpha_for_10x(100) == 901
        assert crossover_alpha_for_10x(1000) == 9001

    def test_sweep_renders(self):
        from repro.experiments import scalability_sweep

        text = scalability_sweep.run()
        assert "1000x" in text or "1000.0" in text


class TestErrorBars:
    def test_error_bars_nonzero_under_jitter(self):
        from repro.experiments.fig6e import run_with_error_bars

        table = run_with_error_bars(counts=(5,), seeds=3)
        stds = [row[3] for row in table.rows]
        assert any(s > 0 for s in stds)


class TestRadioComparison:
    def test_all_radios_complete(self):
        from repro.experiments.radio_comparison import run

        table = run(n=4)
        assert len(table.rows) == 3

    def test_slower_radio_wider_gap(self):
        from repro.experiments.radio_comparison import run

        table = run(n=4)
        ratios = {row[0]: row[3] for row in table.rows}
        assert ratios["zigbee"] > ratios["wifi"]


class TestMixedFleet:
    def test_all_levels_complete_in_one_round(self):
        from repro.experiments.mixed_fleet import measure

        timeline, per_level = measure(n_per_level=4)
        assert all(len(v) == 4 for v in per_level.values())

    def test_level1_finishes_first(self):
        from repro.experiments.mixed_fleet import measure

        _, per_level = measure(n_per_level=4)
        assert max(per_level[1]) < min(per_level[2])

    def test_covert_served_within_mixed_round(self):
        from repro.experiments.mixed_fleet import measure

        timeline, _ = measure(n_per_level=3)
        l3_sightings = [s for s in timeline.services if s.object_id.startswith("l3-")]
        assert all(s.level_seen == 3 for s in l3_sightings)
