"""Extension experiments: multi-group, timing curve, capacity."""

import pytest

from repro.experiments import capacity, multi_group, timing_attack
from repro.net.run import simulate_multi_group_discovery


class TestMultiGroup:
    def test_all_covert_services_found(self):
        m = multi_group.measure(2, kiosks_per_group=2)
        assert m["covert_found"] == 4
        assert len(m["rounds"]) == 2

    def test_cost_linear_in_groups(self):
        one = multi_group.measure(1)["total_s"]
        three = multi_group.measure(3)["total_s"]
        assert 2.0 * one < three < 6.0 * one

    def test_merged_timeline_keeps_best_sighting(self):
        subject, objects = multi_group.build(2)
        merged, _ = simulate_multi_group_discovery(subject, objects)
        assert all(s.level_seen == 3 for s in merged.services)
        # later-group kiosks complete later (cumulative offsets)
        g0 = [t for oid, t in merged.completion.items() if "-g0-" in oid]
        g1 = [t for oid, t in merged.completion.items() if "-g1-" in oid]
        assert max(g0) < min(g1)

    def test_single_group_degenerates_to_one_round(self):
        m = multi_group.measure(1)
        assert len(m["rounds"]) == 1


class TestTimingAttackCurve:
    def test_attack_defeated_at_realistic_jitter(self):
        table = timing_attack.run(jitters=(0.25,))
        accuracy = table.rows[0][1]
        assert accuracy < 0.7
        assert table.rows[0][3] == "attack defeated"

    def test_gap_stays_sub_millisecond(self):
        table = timing_attack.run(jitters=(0.0,))
        gap_ms = table.rows[0][2]
        assert gap_ms < 1.0  # constant-work design keeps the signal tiny


class TestCapacity:
    def test_monotone_in_budget(self):
        low = capacity.max_objects_within(2, 0.4, hi=24)
        high = capacity.max_objects_within(2, 1.2, hi=48)
        assert high > low

    def test_level1_capacity_exceeds_level2(self):
        l1 = capacity.max_objects_within(1, 0.5, hi=48)
        l2 = capacity.max_objects_within(2, 0.5, hi=48)
        assert l1 > l2

    def test_paper_office_fits_the_budget(self):
        """§II-C's ~30-object office completes within ~1 s at Level 2/3."""
        assert capacity.max_objects_within(2, 1.1, hi=40) >= 28

    def test_zero_when_budget_impossible(self):
        assert capacity.max_objects_within(2, 0.01, hi=8) == 0


class TestSecurityReport:
    def test_every_row_holds(self):
        from repro.experiments.security_report import run

        table = run()
        assert len(table.rows) >= 10
        failures = [row for row in table.rows if row[3] is not True]
        assert failures == [], f"security scorecard failures: {failures}"
