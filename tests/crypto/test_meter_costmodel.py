"""Op metering and the calibrated device cost tables."""

import pytest

from repro.crypto import meter
from repro.crypto.costmodel import (
    NEXUS6,
    RASPBERRY_PI3,
    STRENGTHS,
    abe_decrypt_ms,
)
from repro.crypto.ecdh import EphemeralECDH
from repro.crypto.ecdsa import generate_signing_key
from repro.crypto.primitives import hmac_sha256


class TestMeter:
    def test_no_meter_is_noop(self):
        hmac_sha256(b"k", b"m")  # must not raise with no active meter

    def test_counts_ops(self):
        key = generate_signing_key()
        with meter.metered() as tally:
            sig = key.sign(b"m")
            key.public_key.verify(sig, b"m")
        assert tally.counts[("ecdsa_sign", 128)] == 1
        assert tally.counts[("ecdsa_verify", 128)] == 1

    def test_counts_ecdh(self):
        with meter.metered() as tally:
            a = EphemeralECDH()
            b = EphemeralECDH()
            a.derive_premaster(b.kexm)
        assert tally.total("ecdh_gen") == 2
        assert tally.total("ecdh_derive") == 1

    def test_nested_meters_fold_into_outer(self):
        with meter.metered() as outer:
            hmac_sha256(b"k", b"m")
            with meter.metered() as inner:
                hmac_sha256(b"k", b"m")
                hmac_sha256(b"k", b"m")
            hmac_sha256(b"k", b"m")
        assert inner.total("hmac") == 2
        assert outer.total("hmac") == 4

    def test_meter_deactivated_after_block(self):
        with meter.metered() as tally:
            pass
        hmac_sha256(b"k", b"m")
        assert tally.total("hmac") == 0

    def test_merge(self):
        a, b = meter.OpMeter(), meter.OpMeter()
        a.add("hmac")
        b.add("hmac", n=2)
        a.merge(b)
        assert a.total("hmac") == 3


class TestCostModel:
    def test_level2_subject_anchor(self):
        """1 sign + 3 verify + 2 ECDH = 27.4 ms (Fig. 6(b))."""
        t = NEXUS6
        total = (
            t.op_cost_ms("ecdsa_sign", 128)
            + 3 * t.op_cost_ms("ecdsa_verify", 128)
            + t.op_cost_ms("ecdh_gen", 128)
            + t.op_cost_ms("ecdh_derive", 128)
        )
        assert total == pytest.approx(27.4, abs=0.01)

    def test_level2_object_anchor(self):
        t = RASPBERRY_PI3
        total = (
            t.op_cost_ms("ecdsa_sign", 128)
            + 3 * t.op_cost_ms("ecdsa_verify", 128)
            + t.op_cost_ms("ecdh_gen", 128)
            + t.op_cost_ms("ecdh_derive", 128)
        )
        assert total == pytest.approx(78.2, abs=0.1)

    def test_level1_subject_anchor(self):
        assert NEXUS6.op_cost_ms("ecdsa_verify", 128) == pytest.approx(5.1)

    def test_fig6a_endpoints(self):
        assert NEXUS6.op_cost_ms("ecdsa_sign", 112) == pytest.approx(4.7)
        assert NEXUS6.op_cost_ms("ecdsa_sign", 256) == pytest.approx(26.0)

    def test_monotone_in_strength(self):
        for op in ("ecdsa_sign", "ecdsa_verify", "ecdh_gen", "ecdh_derive"):
            costs = [NEXUS6.op_cost_ms(op, s) for s in STRENGTHS]
            assert costs == sorted(costs)

    def test_pairing_anchors(self):
        assert NEXUS6.pairing_ms == 2200.0
        assert RASPBERRY_PI3.pairing_ms == 7700.0

    def test_pi_hmac_anchor(self):
        """§IX-C: MAC verification costs ~0.08 ms on a Pi."""
        assert RASPBERRY_PI3.hmac_ms == pytest.approx(0.08)

    def test_meter_pricing(self):
        tally = meter.OpMeter()
        tally.add("ecdsa_sign", 128)
        tally.add("hmac", n=10)
        expected = NEXUS6.op_cost_ms("ecdsa_sign", 128) + 10 * NEXUS6.hmac_ms
        assert NEXUS6.meter_cost_ms(tally) == pytest.approx(expected)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown operation"):
            NEXUS6.op_cost_ms("quantum_sign")

    def test_unknown_strength_rejected(self):
        with pytest.raises(ValueError):
            NEXUS6.op_cost_ms("ecdsa_sign", 160)

    def test_scaled_profile(self):
        fast = RASPBERRY_PI3.scaled(0.5)
        assert fast.pairing_ms == pytest.approx(3850.0)
        assert fast.op_cost_ms("ecdsa_sign", 128) == pytest.approx(
            RASPBERRY_PI3.op_cost_ms("ecdsa_sign", 128) / 2
        )

    def test_abe_anchor_linear(self):
        """Fig. 6(c): ~1 s per attribute."""
        assert abe_decrypt_ms(5) - abe_decrypt_ms(4) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            abe_decrypt_ms(0)
