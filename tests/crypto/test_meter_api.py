"""Meter fast path and the explicit enable/disable/reset API."""

from repro.crypto import meter


class TestFastPath:
    def test_record_is_noop_when_disabled(self):
        assert not meter.is_enabled()
        meter.record("ecdsa_sign", 128)  # must not raise, must not count anywhere
        assert meter.global_meter() is None

    def test_enabled_inside_metered_block_only(self):
        assert not meter.is_enabled()
        with meter.metered():
            assert meter.is_enabled()
        assert not meter.is_enabled()

    def test_nested_blocks_keep_flag_until_outermost_exit(self):
        with meter.metered():
            with meter.metered():
                assert meter.is_enabled()
            assert meter.is_enabled()
        assert not meter.is_enabled()


class TestGlobalMeter:
    def test_enable_collects_until_disable(self):
        tally = meter.enable()
        try:
            meter.record("ecdsa_sign", 128)
            meter.record("hmac", 0, n=3)
            assert tally.counts[("ecdsa_sign", 128)] == 1
            assert tally.counts[("hmac", 0)] == 3
        finally:
            assert meter.disable() is tally
        meter.record("ecdsa_sign", 128)  # post-disable: dropped
        assert tally.counts[("ecdsa_sign", 128)] == 1

    def test_reset_clears_totals(self):
        tally = meter.enable()
        try:
            meter.record("aes")
            meter.reset()
            assert tally.snapshot() == {}
        finally:
            meter.disable()

    def test_reset_without_enable_is_noop(self):
        meter.reset()
        assert meter.global_meter() is None

    def test_metered_block_shadows_then_folds_into_global(self):
        tally = meter.enable()
        try:
            with meter.metered() as inner:
                meter.record("ecdsa_verify", 128)
            assert inner.counts[("ecdsa_verify", 128)] == 1
            # folded into the global meter on block exit
            assert tally.counts[("ecdsa_verify", 128)] == 1
        finally:
            meter.disable()

    def test_enable_accepts_existing_meter(self):
        mine = meter.OpMeter()
        assert meter.enable(mine) is mine
        try:
            meter.record("hmac")
            assert mine.total("hmac") == 1
        finally:
            meter.disable()
