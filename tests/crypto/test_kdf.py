"""Key-schedule tests: K2, K3, finished MACs (§V, §VI-A)."""

from hypothesis import given, strategies as st

from repro.crypto import kdf
from repro.crypto.primitives import hmac_sha256, sha256

R_S = b"s" * 28
R_O = b"o" * 28


class TestK2:
    def test_matches_paper_formula(self):
        """K2 = HMAC(preK, 'session key' || R_S || R_O)."""
        pre_k = b"premaster"
        expected = hmac_sha256(pre_k, b"session key" + R_S + R_O)
        assert kdf.derive_k2(pre_k, R_S, R_O) == expected

    def test_nonce_binding(self):
        k = kdf.derive_k2(b"p", R_S, R_O)
        assert kdf.derive_k2(b"p", R_O, R_S) != k
        assert kdf.derive_k2(b"p", b"x" * 28, R_O) != k

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_distinct_premasters_distinct_keys(self, p1, p2):
        if p1 == p2:
            return
        assert kdf.derive_k2(p1, R_S, R_O) != kdf.derive_k2(p2, R_S, R_O)


class TestK3:
    def test_matches_paper_formula(self):
        """K3 = HMAC(K2 || K_grp, 'session key' || R_S || R_O)."""
        k2, grp = b"2" * 32, b"g" * 32
        expected = hmac_sha256(k2 + grp, b"session key" + R_S + R_O)
        assert kdf.derive_k3(k2, grp, R_S, R_O) == expected

    def test_group_key_required(self):
        """Different group keys -> different K3: a non-fellow can't match."""
        k2 = b"2" * 32
        k3a = kdf.derive_k3(k2, b"a" * 32, R_S, R_O)
        k3b = kdf.derive_k3(k2, b"b" * 32, R_S, R_O)
        assert k3a != k3b

    def test_k3_differs_from_k2(self):
        k2 = kdf.derive_k2(b"p", R_S, R_O)
        assert kdf.derive_k3(k2, b"g" * 32, R_S, R_O) != k2


class TestFinishedMacs:
    def test_subject_label(self):
        """MAC_S = HMAC(K, 'subject finished' || Hash(*))."""
        key, transcript = b"k" * 32, b"all content so far"
        expected = hmac_sha256(key, b"subject finished" + sha256(transcript))
        assert kdf.subject_finished(key, transcript) == expected

    def test_object_label(self):
        key, transcript = b"k" * 32, b"all content so far"
        expected = hmac_sha256(key, b"object finished" + sha256(transcript))
        assert kdf.object_finished(key, transcript) == expected

    def test_labels_domain_separate(self):
        key, transcript = b"k" * 32, b"t"
        assert kdf.subject_finished(key, transcript) != kdf.object_finished(key, transcript)

    def test_transcript_binding(self):
        key = b"k" * 32
        assert kdf.subject_finished(key, b"t1") != kdf.subject_finished(key, b"t2")
