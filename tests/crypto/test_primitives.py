"""Unit + property tests for the crypto primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import primitives


class TestSha256:
    def test_deterministic(self):
        assert primitives.sha256(b"abc") == primitives.sha256(b"abc")

    def test_known_vector(self):
        assert primitives.sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_length(self):
        assert len(primitives.sha256(b"x")) == primitives.HASH_LEN


class TestHmac:
    def test_known_vector(self):
        # RFC 4231 test case 2.
        tag = primitives.hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_key_separates(self):
        assert primitives.hmac_sha256(b"k1", b"m") != primitives.hmac_sha256(b"k2", b"m")

    def test_message_separates(self):
        assert primitives.hmac_sha256(b"k", b"m1") != primitives.hmac_sha256(b"k", b"m2")

    def test_length(self):
        assert len(primitives.hmac_sha256(b"k", b"m")) == primitives.MAC_LEN


class TestConstantTimeEqual:
    def test_equal(self):
        assert primitives.constant_time_equal(b"same", b"same")

    def test_unequal(self):
        assert not primitives.constant_time_equal(b"same", b"diff")

    def test_length_mismatch(self):
        assert not primitives.constant_time_equal(b"short", b"longer bytes")


class TestRandom:
    def test_nonce_length(self):
        assert len(primitives.fresh_nonce()) == primitives.NONCE_LEN

    def test_nonces_unique(self):
        nonces = {primitives.fresh_nonce() for _ in range(100)}
        assert len(nonces) == 100

    def test_random_bytes_length(self):
        assert len(primitives.random_bytes(17)) == 17


class TestPrf:
    def test_first_block_matches_paper_definition(self):
        """The first 32 bytes must equal HMAC(secret, label||seed||ctr0)."""
        out = primitives.hkdf_like_prf(b"secret", b"label", b"seed", 32)
        direct = primitives.hmac_sha256(b"secret", b"label" + b"seed" + b"\x00" * 4)
        assert out == direct

    def test_extension_is_prefix_consistent(self):
        short = primitives.hkdf_like_prf(b"s", b"l", b"x", 16)
        long = primitives.hkdf_like_prf(b"s", b"l", b"x", 48)
        assert long[:16] == short

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            primitives.hkdf_like_prf(b"s", b"l", b"x", 0)

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=200))
    def test_output_length_property(self, secret, length):
        assert len(primitives.hkdf_like_prf(secret, b"l", b"s", length)) == length

    @given(st.binary(max_size=32), st.binary(max_size=32))
    def test_distinct_seeds_distinct_outputs(self, seed_a, seed_b):
        if seed_a == seed_b:
            return
        a = primitives.hkdf_like_prf(b"k", b"l", seed_a)
        b = primitives.hkdf_like_prf(b"k", b"l", seed_b)
        # Note: (label+seed) concatenation could collide if label weren't
        # fixed-width within one call site; with equal labels distinct
        # seeds give distinct inputs.
        assert a != b
