"""CP-ABE (BSW07) tests: access trees, scheme correctness, cost shape."""

import pytest

from repro.crypto import meter
from repro.crypto.abe import (
    AbeError,
    CpAbe,
    and_node,
    decrypt_bytes,
    encrypt_bytes,
    leaf,
    or_node,
    policy_of_attributes,
    threshold_node,
)


@pytest.fixture(scope="module")
def scheme():
    return CpAbe()


@pytest.fixture(scope="module")
def keys(scheme):
    return scheme.setup()


class TestAccessTree:
    def test_leaf_satisfaction(self):
        assert leaf("a").satisfied_by({"a", "b"})
        assert not leaf("a").satisfied_by({"b"})

    def test_and(self):
        tree = and_node(leaf("a"), leaf("b"))
        assert tree.satisfied_by({"a", "b"})
        assert not tree.satisfied_by({"a"})

    def test_or(self):
        tree = or_node(leaf("a"), leaf("b"))
        assert tree.satisfied_by({"b"})
        assert not tree.satisfied_by({"c"})

    def test_threshold_2_of_3(self):
        tree = threshold_node(2, leaf("a"), leaf("b"), leaf("c"))
        assert tree.satisfied_by({"a", "c"})
        assert not tree.satisfied_by({"a"})

    def test_nested(self):
        tree = and_node(leaf("employee"), or_node(leaf("dept:X"), leaf("dept:Y")))
        assert tree.satisfied_by({"employee", "dept:Y"})
        assert not tree.satisfied_by({"dept:X"})

    def test_leaves_in_order(self):
        tree = and_node(leaf("a"), or_node(leaf("b"), leaf("c")))
        assert tree.leaves() == ["a", "b", "c"]

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            threshold_node(4, leaf("a"), leaf("b"))

    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError):
            policy_of_attributes([])


class TestScheme:
    def test_roundtrip_and_policy(self, scheme, keys):
        pk, mk = keys
        sk = scheme.keygen(mk, {"a", "b"})
        message = scheme.group.random_gt()
        ct = scheme.encrypt(pk, message, and_node(leaf("a"), leaf("b")))
        assert scheme.decrypt(pk, sk, ct) == message

    def test_unsatisfying_key_rejected(self, scheme, keys):
        pk, mk = keys
        sk = scheme.keygen(mk, {"a"})
        ct = scheme.encrypt(pk, scheme.group.random_gt(), and_node(leaf("a"), leaf("b")))
        with pytest.raises(AbeError):
            scheme.decrypt(pk, sk, ct)

    def test_or_policy_needs_only_one_branch(self, scheme, keys):
        pk, mk = keys
        sk = scheme.keygen(mk, {"b"})
        message = scheme.group.random_gt()
        ct = scheme.encrypt(pk, message, or_node(leaf("a"), leaf("b")))
        assert scheme.decrypt(pk, sk, ct) == message

    def test_threshold_policy(self, scheme, keys):
        pk, mk = keys
        message = scheme.group.random_gt()
        policy = threshold_node(2, leaf("a"), leaf("b"), leaf("c"))
        ct = scheme.encrypt(pk, message, policy)
        assert scheme.decrypt(pk, scheme.keygen(mk, {"a", "c"}), ct) == message
        with pytest.raises(AbeError):
            scheme.decrypt(pk, scheme.keygen(mk, {"c"}), ct)

    def test_nested_policy(self, scheme, keys):
        pk, mk = keys
        message = scheme.group.random_gt()
        policy = and_node(leaf("employee"), or_node(leaf("dept:X"), leaf("dept:Y")))
        ct = scheme.encrypt(pk, message, policy)
        assert scheme.decrypt(pk, scheme.keygen(mk, {"employee", "dept:Y"}), ct) == message

    def test_collusion_keys_do_not_combine(self, scheme, keys):
        """BSW07's collusion resistance: two keys each satisfying half of
        an AND policy cannot be combined — structurally, neither key alone
        decrypts (our transparent group can't prove hardness, but the
        recombination path must fail for each key separately)."""
        pk, mk = keys
        ct = scheme.encrypt(pk, scheme.group.random_gt(), and_node(leaf("a"), leaf("b")))
        for attrs in ({"a"}, {"b"}):
            with pytest.raises(AbeError):
                scheme.decrypt(pk, scheme.keygen(mk, attrs), ct)

    def test_empty_attribute_set_rejected(self, scheme, keys):
        _, mk = keys
        with pytest.raises(ValueError):
            scheme.keygen(mk, set())


class TestHybrid:
    def test_bytes_roundtrip(self, scheme, keys):
        pk, mk = keys
        sk = scheme.keygen(mk, {"x"})
        header, body = encrypt_bytes(scheme, pk, b"profile bytes", leaf("x"))
        assert decrypt_bytes(scheme, pk, sk, header, body) == b"profile bytes"

    def test_wrong_attrs_cannot_read_bytes(self, scheme, keys):
        pk, mk = keys
        sk = scheme.keygen(mk, {"y"})
        header, body = encrypt_bytes(scheme, pk, b"secret", leaf("x"))
        with pytest.raises(AbeError):
            decrypt_bytes(scheme, pk, sk, header, body)


class TestCostShape:
    def test_pairings_linear_in_attributes(self, scheme, keys):
        """Fig. 6(c)'s mechanism: 2 pairings per satisfied leaf + 1."""
        pk, mk = keys
        counts = {}
        for n in (1, 3, 5):
            attrs = {f"a{i}" for i in range(n)}
            sk = scheme.keygen(mk, attrs)
            ct = scheme.encrypt(pk, scheme.group.random_gt(), policy_of_attributes(sorted(attrs)))
            with meter.metered() as tally:
                scheme.decrypt(pk, sk, ct)
            counts[n] = tally.total("pairing")
        assert counts[1] == 2 * 1 + 1
        assert counts[3] == 2 * 3 + 1
        assert counts[5] == 2 * 5 + 1
