"""Ephemeral ECDH (KEXM) tests."""

import pytest

from repro.crypto.ecdh import EphemeralECDH, kexm_length


class TestKeyAgreement:
    def test_both_sides_agree(self):
        a, b = EphemeralECDH(), EphemeralECDH()
        assert a.derive_premaster(b.kexm) == b.derive_premaster(a.kexm)

    def test_distinct_sessions_distinct_secrets(self):
        """Ephemerality: every handshake gets a fresh premaster."""
        peer = EphemeralECDH()
        s1 = EphemeralECDH().derive_premaster(peer.kexm)
        s2 = EphemeralECDH().derive_premaster(peer.kexm)
        assert s1 != s2

    @pytest.mark.parametrize("strength", [112, 128, 192, 256])
    def test_all_strengths(self, strength):
        a, b = EphemeralECDH(strength), EphemeralECDH(strength)
        assert a.derive_premaster(b.kexm) == b.derive_premaster(a.kexm)


class TestKexmFormat:
    def test_kexm_is_64_bytes_at_128bit(self):
        """§IX-A: 'KEXM_X … [is] 64 B'."""
        assert len(EphemeralECDH(128).kexm) == 64
        assert kexm_length(128) == 64

    def test_wrong_length_rejected(self):
        a = EphemeralECDH()
        with pytest.raises(ValueError, match="KEXM must be"):
            a.derive_premaster(b"\x00" * 63)

    def test_off_curve_point_rejected(self):
        a = EphemeralECDH()
        with pytest.raises(ValueError, match="invalid KEXM point"):
            a.derive_premaster(b"\x01" * 64)

    def test_tampered_kexm_changes_or_fails(self):
        """A bit-flipped KEXM either fails to parse or yields a different
        premaster — never silently the same key."""
        a, b = EphemeralECDH(), EphemeralECDH()
        good = a.derive_premaster(b.kexm)
        tampered = bytearray(b.kexm)
        tampered[10] ^= 0x01
        try:
            bad = a.derive_premaster(bytes(tampered))
        except ValueError:
            return
        assert bad != good
