"""AES-CBC + HMAC encrypt-then-MAC tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import aead

KEY = b"k" * 32
OTHER = b"o" * 32


class TestRoundtrip:
    def test_roundtrip(self):
        blob = aead.encrypt(KEY, b"secret profile")
        assert aead.decrypt(KEY, blob) == b"secret profile"

    def test_empty_plaintext(self):
        assert aead.decrypt(KEY, aead.encrypt(KEY, b"")) == b""

    def test_fresh_iv_every_call(self):
        assert aead.encrypt(KEY, b"same") != aead.encrypt(KEY, b"same")

    @given(st.binary(max_size=1024))
    def test_roundtrip_property(self, plaintext):
        assert aead.decrypt(KEY, aead.encrypt(KEY, plaintext)) == plaintext

    @given(st.binary(max_size=512))
    def test_ciphertext_length_formula(self, plaintext):
        blob = aead.encrypt(KEY, plaintext)
        assert len(blob) == aead.ciphertext_length(len(plaintext))


class TestAuthenticity:
    def test_wrong_key_rejected(self):
        blob = aead.encrypt(KEY, b"payload")
        with pytest.raises(aead.AeadError):
            aead.decrypt(OTHER, blob)

    @pytest.mark.parametrize("position", [0, 15, 16, 40, -1])
    def test_bit_flip_rejected(self, position):
        blob = bytearray(aead.encrypt(KEY, b"payload that is long enough"))
        blob[position] ^= 0x01
        with pytest.raises(aead.AeadError):
            aead.decrypt(KEY, bytes(blob))

    def test_truncation_rejected(self):
        blob = aead.encrypt(KEY, b"payload")
        with pytest.raises(aead.AeadError):
            aead.decrypt(KEY, blob[:-1])

    def test_too_short_rejected(self):
        with pytest.raises(aead.AeadError, match="too short"):
            aead.decrypt(KEY, b"\x00" * 10)

    def test_extension_rejected(self):
        blob = aead.encrypt(KEY, b"payload")
        with pytest.raises(aead.AeadError):
            aead.decrypt(KEY, blob + b"\x00")


class TestKeySeparation:
    def test_k2_ciphertext_unreadable_with_k3(self):
        """The v3.0 level-classification trick depends on this: a RES2
        encrypted under K2 must fail cleanly under K3 and vice versa."""
        k2, k3 = b"2" * 32, b"3" * 32
        blob = aead.encrypt(k2, b"level 2 variant")
        with pytest.raises(aead.AeadError):
            aead.decrypt(k3, blob)


class TestCipherObject:
    def test_wrapper_roundtrip(self):
        cipher = aead.SymmetricCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(b"x")) == b"x"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            aead.SymmetricCipher(b"")
