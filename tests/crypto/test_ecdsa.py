"""ECDSA wrapper tests across the paper's four strengths."""

import pytest

from repro.crypto import ecdsa


@pytest.fixture(scope="module")
def key128():
    return ecdsa.generate_signing_key(128)


class TestSignVerify:
    def test_roundtrip(self, key128):
        sig = key128.sign(b"message")
        assert key128.public_key.verify(sig, b"message")

    def test_wrong_message_rejected(self, key128):
        sig = key128.sign(b"message")
        assert not key128.public_key.verify(sig, b"other")

    def test_wrong_key_rejected(self, key128):
        other = ecdsa.generate_signing_key(128)
        sig = key128.sign(b"message")
        assert not other.public_key.verify(sig, b"message")

    def test_tampered_signature_rejected(self, key128):
        sig = bytearray(key128.sign(b"message"))
        sig[0] ^= 0xFF
        assert not key128.public_key.verify(bytes(sig), b"message")

    def test_truncated_signature_rejected(self, key128):
        sig = key128.sign(b"message")
        assert not key128.public_key.verify(sig[:-1], b"message")

    def test_empty_signature_rejected(self, key128):
        assert not key128.public_key.verify(b"", b"message")


class TestStrengths:
    @pytest.mark.parametrize("strength", ecdsa.STRENGTH_TO_CURVE.keys())
    def test_all_strengths_roundtrip(self, strength):
        key = ecdsa.generate_signing_key(strength)
        sig = key.sign(b"m")
        assert key.public_key.verify(sig, b"m")

    def test_signature_is_64_bytes_at_128bit(self, key128):
        """§IX-A: 'SIG_X [is] 64 B' at the paper's default strength."""
        assert len(key128.sign(b"m")) == 64
        assert ecdsa.signature_length(128) == 64

    @pytest.mark.parametrize(
        "strength,length", [(112, 56), (128, 64), (192, 96), (256, 132)]
    )
    def test_signature_lengths(self, strength, length):
        assert ecdsa.signature_length(strength) == length

    def test_unsupported_strength_rejected(self):
        with pytest.raises(ValueError, match="unsupported security strength"):
            ecdsa.generate_signing_key(160)


class TestSerialization:
    def test_public_key_roundtrip(self, key128):
        data = key128.public_key.to_bytes()
        restored = ecdsa.VerifyingKey.from_bytes(data, 128)
        sig = key128.sign(b"m")
        assert restored.verify(sig, b"m")

    def test_uncompressed_point_format(self, key128):
        data = key128.public_key.to_bytes()
        assert data[0] == 0x04
        assert len(data) == 65  # 1 + 2 * 32 at P-256

    def test_garbage_point_rejected(self):
        with pytest.raises(ValueError):
            ecdsa.VerifyingKey.from_bytes(b"\x04" + b"\x01" * 64, 128)


class TestPemSerialization:
    def test_roundtrip(self, key128):
        restored = ecdsa.SigningKey.from_pem(key128.to_pem())
        sig = restored.sign(b"m")
        assert key128.public_key.verify(sig, b"m")
        assert restored.strength == 128

    def test_all_strengths(self):
        for strength in (112, 192, 256):
            key = ecdsa.generate_signing_key(strength)
            assert ecdsa.SigningKey.from_pem(key.to_pem()).strength == strength

    def test_non_ec_pem_rejected(self):
        from cryptography.hazmat.primitives import serialization
        from cryptography.hazmat.primitives.asymmetric import rsa

        rsa_key = rsa.generate_private_key(public_exponent=65537, key_size=2048)
        pem = rsa_key.private_bytes(
            serialization.Encoding.PEM,
            serialization.PrivateFormat.PKCS8,
            serialization.NoEncryption(),
        )
        with pytest.raises(ValueError, match="EC private key"):
            ecdsa.SigningKey.from_pem(pem)
