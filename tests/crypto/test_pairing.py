"""Simulated bilinear group: algebraic laws the ABE/PBC schemes rely on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.pairing import PairingGroup

GROUP = PairingGroup()
scalars = st.integers(min_value=1, max_value=GROUP.order - 1)


class TestGroupLaws:
    def test_identity(self):
        g = GROUP.g1(5)
        assert (g * GROUP.g1(0)).exponent == g.exponent

    def test_inverse(self):
        g = GROUP.random_g1()
        assert (g * g.inverse()).is_identity()

    @given(scalars, scalars)
    @settings(max_examples=25)
    def test_commutativity(self, a, b):
        assert (GROUP.g1(a) * GROUP.g1(b)).exponent == (GROUP.g1(b) * GROUP.g1(a)).exponent

    @given(scalars, scalars)
    @settings(max_examples=25)
    def test_exponent_laws(self, a, k):
        assert (GROUP.g1(a) ** k).exponent == a * k % GROUP.order

    def test_cross_group_rejected(self):
        other = PairingGroup(7)
        with pytest.raises(ValueError):
            GROUP.g1(1) * other.g1(1)  # noqa: B018


class TestPairing:
    @given(scalars, scalars)
    @settings(max_examples=25)
    def test_bilinearity_left(self, a, b):
        """e(g^a, g^b) = e(g, g)^(ab)."""
        lhs = GROUP.pair(GROUP.g1(a), GROUP.g1(b))
        assert lhs.exponent == a * b % GROUP.order

    @given(scalars, scalars, scalars)
    @settings(max_examples=25)
    def test_bilinearity_product(self, a, b, c):
        """e(g^a * g^b, g^c) = e(g^a, g^c) * e(g^b, g^c)."""
        lhs = GROUP.pair(GROUP.g1(a) * GROUP.g1(b), GROUP.g1(c))
        rhs = GROUP.pair(GROUP.g1(a), GROUP.g1(c)) * GROUP.pair(GROUP.g1(b), GROUP.g1(c))
        assert lhs.exponent == rhs.exponent

    def test_symmetry(self):
        p, q = GROUP.random_g1(), GROUP.random_g1()
        assert GROUP.pair(p, q).exponent == GROUP.pair(q, p).exponent

    def test_non_degenerate(self):
        assert not GROUP.pair(GROUP.g1(1), GROUP.g1(1)).is_identity()


class TestHashToGroup:
    def test_deterministic(self):
        assert GROUP.hash_to_g1(b"id").exponent == GROUP.hash_to_g1(b"id").exponent

    def test_distinct_inputs(self):
        assert GROUP.hash_to_g1(b"a").exponent != GROUP.hash_to_g1(b"b").exponent


class TestLagrange:
    def test_interpolates_constant_term(self):
        """Reconstruct q(0) from shares of a degree-2 polynomial."""
        q = GROUP.order
        coeffs = [1234, 77, 9]  # q(x) = 1234 + 77x + 9x^2
        poly = lambda x: (coeffs[0] + coeffs[1] * x + coeffs[2] * x * x) % q
        index_set = [1, 3, 5]
        total = 0
        for i in index_set:
            total = (total + GROUP.lagrange_coefficient(i, index_set, 0) * poly(i)) % q
        assert total == coeffs[0]

    def test_requires_membership(self):
        with pytest.raises(ValueError):
            GROUP.lagrange_coefficient(2, [1, 3], 0)


class TestEncoding:
    def test_derive_key_is_32_bytes(self):
        assert len(GROUP.random_gt().derive_key()) == 32

    def test_to_bytes_roundtrip_exponent(self):
        e = GROUP.random_g1()
        assert int.from_bytes(e.to_bytes(), "big") == e.exponent
