"""Ephemeral-key pool: single-use handout, accounting, thread safety."""

import threading

import pytest

from repro.crypto import meter
from repro.crypto.keypool import EphemeralKeyPool, configure, default_pool, ecdh_keypair


@pytest.fixture
def pool():
    return EphemeralKeyPool(batch_size=8, background_refill=False)


class TestHandout:
    def test_primed_handout_hits(self, pool):
        pool.prime(3)
        assert pool.stock() == 3
        pool.get()
        assert pool.stock() == 2
        assert pool.hits[128] == 1 and pool.misses[128] == 0

    def test_empty_pool_misses_and_still_works(self, pool):
        pair = pool.get()
        assert pool.misses[128] == 1
        # a miss-generated pair is fully functional
        peer = pool.get()
        assert pair.derive_premaster(peer.kexm) == peer.derive_premaster(pair.kexm)

    def test_no_key_reuse_across_sessions(self, pool):
        """Forward secrecy: every handout is a distinct one-shot key."""
        pool.prime(16)
        kexms = {pool.get().kexm for _ in range(16)}
        assert len(kexms) == 16
        assert pool.stock() == 0

    def test_pooled_and_fresh_keys_interoperate(self, pool):
        pool.prime(1)
        pooled = pool.get()
        fresh = pool.get()  # miss -> inline generation
        assert pooled.derive_premaster(fresh.kexm) == fresh.derive_premaster(pooled.kexm)

    def test_strengths_are_separate_stocks(self, pool):
        pool.prime(2, strength=128)
        pool.prime(1, strength=192)
        assert pool.stock(128) == 2 and pool.stock(192) == 1
        assert pool.get(192).kexm != b""
        assert pool.stock(128) == 2 and pool.stock(192) == 0


class TestAccounting:
    def test_hit_records_logical_ecdh_gen(self, pool):
        """§IX-B accounting intact: the consuming context is charged the
        keygen op whether or not the key came from the pool."""
        pool.prime(1)
        with meter.metered() as tally:
            pool.get()
        assert tally.counts[("ecdh_gen", 128)] == 1
        assert tally.counts[("ecdh_pool_hit", 128)] == 1

    def test_miss_records_gen_and_miss_marker(self, pool):
        with meter.metered() as tally:
            pool.get()
        assert tally.counts[("ecdh_gen", 128)] == 1
        assert tally.counts[("ecdh_pool_miss", 128)] == 1

    def test_prime_records_nothing(self, pool):
        """Precomputation is off-path: it must not meter ops anywhere."""
        with meter.metered() as tally:
            pool.prime(4)
        assert tally.snapshot() == {}


class TestRefill:
    def test_background_refill_restocks(self):
        pool = EphemeralKeyPool(batch_size=4, low_water=4, background_refill=True)
        pool.get()  # miss; triggers a refill thread
        for _ in range(200):
            if pool.stock() == 4:
                break
            threading.Event().wait(0.01)
        assert pool.stock() == 4

    def test_no_refill_when_disabled(self, pool):
        pool.get()
        threading.Event().wait(0.05)
        assert pool.stock() == 0

    def test_thread_safe_handout(self):
        pool = EphemeralKeyPool(background_refill=False)
        pool.prime(64)
        seen, lock = [], threading.Lock()

        def worker():
            for _ in range(16):
                kexm = pool.get().kexm
                with lock:
                    seen.append(kexm)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 64 == len(set(seen))  # no duplicate handouts
        assert pool.stock() == 0 and sum(pool.hits.values()) == 64


class TestModuleDefault:
    def test_engines_entry_point_respects_disable(self):
        configure(enabled=False)
        try:
            with meter.metered() as tally:
                ecdh_keypair()
            # disabled pool == plain on-demand generation: no pool markers
            assert tally.counts[("ecdh_gen", 128)] == 1
            assert tally.total("ecdh_pool_hit") == 0
            assert tally.total("ecdh_pool_miss") == 0
        finally:
            configure(enabled=True)

    def test_default_pool_primed_handout(self):
        pool = default_pool()
        pool.drain()
        pool.prime(1)
        with meter.metered() as tally:
            ecdh_keypair()
        assert tally.counts[("ecdh_pool_hit", 128)] == 1
        pool.drain()

    def test_configure_validates_batch_size(self):
        with pytest.raises(ValueError):
            configure(batch_size=0)


class TestForkSafety:
    """ProcessPoolExecutor workers must not inherit pooled parent keys."""

    def test_reset_after_fork_clears_everything(self, pool):
        pool.prime(5)
        pool.get()
        old_lock = pool._lock
        pool.reset_after_fork()
        assert pool.stock() == 0
        assert pool.hits == {} and pool.misses == {}
        assert pool._refilling == set()
        assert pool._lock is not old_lock

    def test_forked_child_starts_with_empty_default_pool(self):
        os = pytest.importorskip("os")
        if not hasattr(os, "fork"):
            pytest.skip("no os.fork on this platform")
        parent_pool = default_pool()
        parent_pool.drain()
        parent_pool.prime(4)
        try:
            pid = os.fork()
            if pid == 0:
                # Child: the at-fork hook must have emptied the stock —
                # drawing here must be a miss, never a parent key.
                ok = default_pool().stock() == 0
                os._exit(0 if ok else 1)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            # The parent's stock is untouched by the child's reset.  A
            # background refill kicked off by an earlier test can still
            # be topping the shared default pool up, so the stock may
            # legitimately exceed what prime() left — only a drop below
            # it would indicate the child's reset leaked into the parent.
            assert parent_pool.stock() >= 4
        finally:
            parent_pool.drain()
