"""Golden conformance vectors for the Argus key schedule.

These hex constants pin the exact byte-level behaviour of the K2/K3
derivation and the finished MACs. Any change — a label typo, a reordered
concatenation, a different PRF iteration — breaks interop between
subjects and objects built from different revisions, and MUST fail here
before it fails in the field. If you change the key schedule on
purpose, bump these vectors in the same commit and say why.
"""

from repro.crypto import kdf
from repro.crypto.primitives import hkdf_like_prf

PRE_K = bytes(range(32))
R_S = bytes([0xAA]) * 28
R_O = bytes([0xBB]) * 28
GROUP_KEY = bytes([0xCC]) * 32
TRANSCRIPT = b"transcript bytes for conformance"

K2_HEX = "ba8734f3dc3119b35dba290bdbeb1dbf1ef692470d15fa2a09bda39026810a15"
K3_HEX = "aa0b587cee9cae857375a4a57b876d0feed0afefece880c30ccd78134c191d57"
MAC_S2_HEX = "90598902b40f154dcb1d1ce69de1b0f16588d7157a4bce67f1a1f74b33e702ea"
MAC_S3_HEX = "58c793bdd037ed6b2f5418eca847159d66e66fbe7749eb22a867d2f0e3300cd0"
MAC_O2_HEX = "777c97356abaf76a76558b7709acb90aa993a591fe0676f7ffa7a838553cc5c2"
PRF48_HEX = (
    "1ddc15ddb69b6847e626be4111457273464cd9492bbf556b178885f27234e5eb"
    "b85ca269a9e936a8026a6eb359c5d50c"
)


class TestKeyScheduleVectors:
    def test_k2(self):
        assert kdf.derive_k2(PRE_K, R_S, R_O).hex() == K2_HEX

    def test_k3(self):
        k2 = kdf.derive_k2(PRE_K, R_S, R_O)
        assert kdf.derive_k3(k2, GROUP_KEY, R_S, R_O).hex() == K3_HEX

    def test_mac_s2(self):
        k2 = bytes.fromhex(K2_HEX)
        assert kdf.subject_finished(k2, TRANSCRIPT).hex() == MAC_S2_HEX

    def test_mac_s3(self):
        k3 = bytes.fromhex(K3_HEX)
        assert kdf.subject_finished(k3, TRANSCRIPT).hex() == MAC_S3_HEX

    def test_mac_o2(self):
        k2 = bytes.fromhex(K2_HEX)
        assert kdf.object_finished(k2, TRANSCRIPT).hex() == MAC_O2_HEX

    def test_prf_expansion(self):
        assert hkdf_like_prf(b"secret", b"label", b"seed", 48).hex() == PRF48_HEX

    def test_labels_are_the_papers(self):
        """The exact ASCII strings of §V are part of the wire contract."""
        assert kdf.LABEL_KEY == b"session key"
        assert kdf.LABEL_SUBJECT == b"subject finished"
        assert kdf.LABEL_OBJECT == b"object finished"
