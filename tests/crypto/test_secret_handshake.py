"""Pairing-based secret handshake (the PBC baseline's core)."""

import pytest

from repro.crypto import meter
from repro.crypto.pairing import PairingGroup
from repro.crypto.secret_handshake import (
    HandshakeAuthority,
    HandshakeParty,
    run_handshake,
)


@pytest.fixture(scope="module")
def group():
    return PairingGroup()


class TestHandshake:
    def test_fellows_succeed(self, group):
        auth = HandshakeAuthority(group)
        a, b = auth.issue(b"alice"), auth.issue(b"kiosk")
        assert run_handshake(group, a, b) == (True, True)

    def test_cross_authority_fails(self, group):
        a = HandshakeAuthority(group).issue(b"alice")
        b = HandshakeAuthority(group).issue(b"kiosk")
        assert run_handshake(group, a, b) == (False, False)

    def test_failure_is_mutual(self, group):
        """Neither side learns more than 'not my fellow' — both verdicts
        fail together; there is no asymmetric leak."""
        a = HandshakeAuthority(group).issue(b"a")
        b = HandshakeAuthority(group).issue(b"b")
        ok_a, ok_b = run_handshake(group, a, b)
        assert ok_a == ok_b is False

    def test_keys_match_only_for_fellows(self, group):
        auth = HandshakeAuthority(group)
        other = HandshakeAuthority(group)
        a, b, c = auth.issue(b"a"), auth.issue(b"b"), other.issue(b"c")
        pa, pb, pc = (HandshakeParty(group, x) for x in (a, b, c))
        k_ab = pa.complete(*pb.hello).key
        k_ba = pb.complete(*pa.hello).key
        k_ac = pa.complete(*pc.hello).key
        k_ca = pc.complete(*pa.hello).key
        assert k_ab == k_ba
        assert k_ac != k_ca

    def test_one_pairing_per_side(self, group):
        """The Fig. 6(d) cost anchor: exactly one pairing per complete()."""
        auth = HandshakeAuthority(group)
        a, b = auth.issue(b"a"), auth.issue(b"b")
        pa, pb = HandshakeParty(group, a), HandshakeParty(group, b)
        with meter.metered() as tally:
            pa.complete(*pb.hello)
        assert tally.total("pairing") == 1

    def test_nonces_fresh_per_party(self, group):
        auth = HandshakeAuthority(group)
        cred = auth.issue(b"a")
        n1 = HandshakeParty(group, cred).nonce
        n2 = HandshakeParty(group, cred).nonce
        assert n1 != n2

    def test_proof_is_nonce_bound(self, group):
        """A proof replayed under different nonces must not verify."""
        auth = HandshakeAuthority(group)
        a, b = auth.issue(b"a"), auth.issue(b"b")
        pa1, pb = HandshakeParty(group, a), HandshakeParty(group, b)
        t_b = pb.complete(*pa1.hello)
        old_proof = pa1.complete(*pb.hello).prove(b"initiator")
        # New session, same parties: old proof must fail.
        pa2 = HandshakeParty(group, a)
        t_b2 = pb.complete(*pa2.hello)
        assert not t_b2.verify(b"initiator", old_proof)
        assert t_b.verify(b"initiator", old_proof)
