"""ECIES (ephemeral ECDH + AEAD) tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecies
from repro.crypto.ecdsa import generate_signing_key


@pytest.fixture(scope="module")
def recipient():
    return generate_signing_key()


class TestRoundtrip:
    def test_roundtrip(self, recipient):
        blob = ecies.encrypt(recipient.public_key, b"new group key material")
        assert ecies.decrypt(recipient, blob) == b"new group key material"

    def test_empty_plaintext(self, recipient):
        assert ecies.decrypt(recipient, ecies.encrypt(recipient.public_key, b"")) == b""

    def test_fresh_ephemeral_per_message(self, recipient):
        a = ecies.encrypt(recipient.public_key, b"same")
        b = ecies.encrypt(recipient.public_key, b"same")
        assert a != b and a[:64] != b[:64]

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=256))
    def test_roundtrip_property(self, recipient, plaintext):
        blob = ecies.encrypt(recipient.public_key, plaintext)
        assert ecies.decrypt(recipient, blob) == plaintext


class TestSecurity:
    def test_wrong_recipient_fails(self, recipient):
        other = generate_signing_key()
        blob = ecies.encrypt(recipient.public_key, b"secret")
        with pytest.raises(ecies.EciesError):
            ecies.decrypt(other, blob)

    def test_tampered_body_fails(self, recipient):
        blob = bytearray(ecies.encrypt(recipient.public_key, b"secret"))
        blob[-1] ^= 0x01
        with pytest.raises(ecies.EciesError):
            ecies.decrypt(recipient, bytes(blob))

    def test_tampered_ephemeral_fails(self, recipient):
        blob = bytearray(ecies.encrypt(recipient.public_key, b"secret"))
        blob[0] ^= 0x01
        with pytest.raises(ecies.EciesError):
            ecies.decrypt(recipient, bytes(blob))

    def test_truncated_fails(self, recipient):
        with pytest.raises(ecies.EciesError):
            ecies.decrypt(recipient, b"\x00" * 10)

    def test_works_at_other_strengths(self):
        key = generate_signing_key(192)
        blob = ecies.encrypt(key.public_key, b"hi")
        assert ecies.decrypt(key, blob) == b"hi"
