"""The crypto worker pool: op semantics, pooling, and the oracles."""

from __future__ import annotations

import pytest

from repro.crypto import ecdh as ecdh_mod
from repro.crypto import ecdsa as ecdsa_mod
from repro.crypto import workpool
from repro.crypto.ecdh import EphemeralECDH
from repro.crypto.ecdsa import generate_signing_key
from repro.crypto.meter import metered
from repro.crypto.workpool import CryptoWorkerPool, execute_op, fork_available


@pytest.fixture
def signing_key():
    return generate_signing_key(128)


def make_ops(signing_key):
    """A representative mixed batch: good verify, bad verify, derive, sign."""
    verifying = signing_key.public_key
    message = b"throughput batch op"
    signature = signing_key.sign(message)
    mine, peer = EphemeralECDH(128), EphemeralECDH(128)
    return [
        ("verify", verifying.to_bytes(), 128, signature, message),
        ("verify", verifying.to_bytes(), 128, signature, b"wrong message"),
        ("derive", mine.private_der(), 128, peer.kexm),
        ("derive", mine.private_der(), 128, b"\x00" * 8),  # malformed point
        ("sign", signing_key.to_pem(), 128, message),
    ], verifying, mine, peer


class TestExecuteOp:
    def test_verify_good_and_bad(self, signing_key):
        ops, *_ = make_ops(signing_key)
        assert execute_op(ops[0]) is True
        assert execute_op(ops[1]) is False

    def test_derive_matches_in_process(self, signing_key):
        ops, _, mine, peer = make_ops(signing_key)
        assert execute_op(ops[2]) == mine.derive_premaster(peer.kexm)

    def test_derive_malformed_peer_is_none(self, signing_key):
        ops, *_ = make_ops(signing_key)
        assert execute_op(ops[3]) is None

    def test_sign_output_verifies(self, signing_key):
        ops, verifying, *_ = make_ops(signing_key)
        signature = execute_op(ops[4])
        assert verifying.verify(signature, b"throughput batch op")

    def test_ops_are_not_metered(self, signing_key):
        ops, *_ = make_ops(signing_key)
        with metered() as tally:
            for op in ops:
                execute_op(op)
        assert not tally.counts

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown batch op"):
            execute_op(("encrypt", b"", 128, b""))


class TestCryptoWorkerPool:
    @staticmethod
    def _check(results, ops, verifying):
        """Deterministic ops must match inline execution exactly; the
        sign op (randomized ECDSA) must simply verify."""
        assert results[:4] == [execute_op(op) for op in ops[:4]]
        assert verifying.verify(results[4], ops[4][3])

    def test_inline_fallback_when_zero_workers(self, signing_key):
        ops, verifying, *_ = make_ops(signing_key)
        with CryptoWorkerPool(0) as pool:
            results = pool.run_batch(ops)
            assert not pool.pooled
            assert pool.inline_ops == len(ops)
            assert pool.pooled_ops == 0
        self._check(results, ops, verifying)

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_pooled_matches_inline(self, signing_key):
        ops, verifying, *_ = make_ops(signing_key)
        with CryptoWorkerPool(2, chunk_size=2) as pool:
            results = pool.run_batch(ops)
            assert pool.pooled
            assert pool.pooled_ops == len(ops)
        self._check(results, ops, verifying)

    def test_results_follow_submission_order(self, signing_key):
        ops, verifying, *_ = make_ops(signing_key)
        batch = ops * 7
        with CryptoWorkerPool(2 if fork_available() else 0) as pool:
            results = pool.run_batch(batch)
        assert len(results) == len(batch)
        for i in range(7):
            self._check(results[5 * i : 5 * i + 5], ops, verifying)

    def test_empty_batch(self):
        with CryptoWorkerPool(2) as pool:
            assert pool.run_batch([]) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            CryptoWorkerPool(-1)

    def test_close_is_idempotent(self):
        pool = CryptoWorkerPool(0)
        pool.run_batch([])
        pool.close()
        pool.close()


class TestPrecomputedOracles:
    def test_verify_oracle_is_consulted(self, signing_key):
        """A staged False beats a genuinely valid signature — proof the
        metered verify really reads the oracle rather than recomputing."""
        verifying = signing_key.public_key
        message = b"oracle check"
        signature = signing_key.sign(message)
        key = (verifying.to_bytes(), signature, message)
        assert verifying.verify(signature, message)
        with workpool.precomputed(verify={key: False}):
            assert not verifying.verify(signature, message)
        assert verifying.verify(signature, message)

    def test_derive_oracle_is_consulted(self):
        mine, peer = EphemeralECDH(128), EphemeralECDH(128)
        staged = b"\xab" * 32
        with workpool.precomputed(derive={(id(mine), peer.kexm): staged}):
            assert mine.derive_premaster(peer.kexm) == staged
        assert mine.derive_premaster(peer.kexm) != staged

    def test_sign_oracle_is_consulted(self, signing_key):
        staged = b"\xcd" * 16
        with workpool.precomputed(sign={(id(signing_key), b"m"): staged}):
            assert signing_key.sign(b"m") == staged

    def test_oracle_miss_falls_through(self, signing_key):
        """Items missing from the oracle compute inline, silently."""
        verifying = signing_key.public_key
        signature = signing_key.sign(b"present")
        with workpool.precomputed(verify={}):
            assert verifying.verify(signature, b"present")
            assert not verifying.verify(signature, b"absent")

    def test_oracle_hits_still_metered(self, signing_key):
        """The oracle replaces the math, never the §IX-B accounting."""
        verifying = signing_key.public_key
        message = b"metered"
        signature = signing_key.sign(message)
        key = (verifying.to_bytes(), signature, message)
        with workpool.precomputed(verify={key: True}):
            with metered() as tally:
                verifying.verify(signature, message)
        assert tally.counts[("ecdsa_verify", 128)] == 1

    def test_nested_precomputed_merges_and_restores(self, signing_key):
        outer_key, inner_key = (id(signing_key), b"a"), (id(signing_key), b"b")
        with workpool.precomputed(sign={outer_key: b"A"}):
            with workpool.precomputed(sign={inner_key: b"B"}):
                assert signing_key.sign(b"a") == b"A"
                assert signing_key.sign(b"b") == b"B"
            assert ecdsa_mod._SIGN_ORACLE == {outer_key: b"A"}
        assert ecdsa_mod._SIGN_ORACLE is None
        assert ecdh_mod._DERIVE_ORACLE is None


class TestColumnarDispatch:
    """The chunked columnar transport: encode/execute/decode round-trip,
    key dedup, lane pinning, the small-batch inline fallback, and the
    warm-pool lifecycle counters behind :meth:`CryptoWorkerPool.stats`."""

    def test_packed_chunk_round_trips_without_processes(self, signing_key):
        ops, verifying, *_ = make_ops(signing_key)
        batch = ops * 5
        payload, shipped, key_refs, uniques = workpool._encode_chunk(batch)
        assert shipped > 0
        assert key_refs == len(batch)
        # 3 distinct key blobs in make_ops (the verifies share one, the
        # derives another): the chunk-local key table collapses repeats.
        assert uniques == 3
        results = workpool._decode_chunk_results(
            batch, workpool._execute_packed_chunk(payload)
        )
        assert results[:4] == [execute_op(op) for op in ops[:4]]
        assert verifying.verify(results[4], ops[4][3])

    def test_small_batches_fall_back_inline(self, signing_key):
        ops, verifying, *_ = make_ops(signing_key)
        with CryptoWorkerPool(2 if fork_available() else 0,
                              inline_below=10) as pool:
            results = pool.run_batch(ops)
            stats = pool.stats()
        assert stats["fallback_inline_batches"] == 1
        assert stats["chunks"] == 0
        assert results[:4] == [execute_op(op) for op in ops[:4]]
        assert verifying.verify(results[4], ops[4][3])

    def test_dispatch_workers_pins_chunk_count(self):
        pool = CryptoWorkerPool(4, chunk_size=8)
        assert pool._chunk_count(100) > 1
        pool.dispatch_workers = 1
        assert pool._chunk_count(100) == 1
        pool.dispatch_workers = 3
        assert pool._chunk_count(100) == 3
        assert pool._chunk_count(2) == 2  # never more chunks than ops

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_warm_pool_reuse_and_stats(self, signing_key):
        ops, verifying, *_ = make_ops(signing_key)
        batch = ops * 8
        with CryptoWorkerPool(2, chunk_size=4).warm() as pool:
            startup_after_warm = pool.startup_s
            assert startup_after_warm > 0.0
            for _ in range(3):  # reuse the same workers across batches
                results = pool.run_batch(batch)
            stats = pool.stats()
        assert pool.startup_s == startup_after_warm  # spawned exactly once
        assert stats["batches"] == 3
        assert stats["chunks"] > 0
        assert stats["pooled_ops"] == 3 * len(batch)
        assert stats["bytes_shipped"] > 0
        # 3 unique keys per 40-op batch, split across small chunks —
        # even per-chunk dedup must collapse a solid fraction of refs.
        assert stats["key_dedup_hit_rate"] > 0.3
        assert stats["pool_startup_s"] == round(startup_after_warm, 4)
        for i in range(8):
            chunk = results[5 * i : 5 * i + 5]
            assert chunk[:4] == [execute_op(op) for op in ops[:4]]
            assert verifying.verify(chunk[4], ops[4][3])
